// Package verify is the unified correctness-tooling layer: a registry
// of machine-checkable invariants contributed by every subsystem, a
// deterministic scenario fuzzer that derives whole random missions from
// a single seed and runs them with all invariants armed, a shrinker
// that reduces a violating scenario to a minimal replayable reproducer,
// and metamorphic properties run as differential checks (permutation
// invariance, solver agreement, checkpoint-cadence independence).
//
// The paper's central premise is IoBTs that stay correct "in the
// presence of adversarial disruption" (§IV); hand-picked fault plans
// (E14/E15) sample that space at a few points, while the fuzzer walks
// it. Every check is deterministic per seed: a violation found tonight
// replays identically tomorrow from the emitted scenario file.
package verify

import (
	"fmt"
	"sort"
	"strings"
	"time"

	"iobt/internal/fault"
	"iobt/internal/sim"
)

// Invariant is one machine-checkable property. Check returns nil while
// the property holds; the returned error should carry the observed
// values so a violation is diagnosable from the report alone.
type Invariant struct {
	Name  string
	Check func() error
}

// Violation is one recorded invariant failure.
type Violation struct {
	At   time.Duration
	Name string
	Err  error
}

func (v Violation) String() string {
	return fmt.Sprintf("%s at %s: %v", v.Name, v.At, v.Err)
}

// maxViolations bounds the recorded violation list; a broken invariant
// trips every tick and would otherwise swamp the report.
const maxViolations = 100

// Registry holds the armed invariant set of one run and the audit trail
// of checks performed against it. The zero value is usable.
type Registry struct {
	invs       []Invariant
	checks     uint64
	violations []Violation
	ticker     *sim.Ticker
	now        func() time.Duration
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry { return &Registry{} }

// Register adds one named invariant.
func (g *Registry) Register(name string, check func() error) {
	g.invs = append(g.invs, Invariant{Name: name, Check: check})
}

// Add appends pre-built invariants.
func (g *Registry) Add(invs ...Invariant) {
	g.invs = append(g.invs, invs...)
}

// Len returns the number of registered invariants.
func (g *Registry) Len() int { return len(g.invs) }

// Names returns the registered invariant names in registration order.
func (g *Registry) Names() []string {
	out := make([]string, len(g.invs))
	for i, inv := range g.invs {
		out[i] = inv.Name
	}
	return out
}

// Checks returns the total number of individual invariant evaluations.
func (g *Registry) Checks() uint64 { return g.checks }

// Violations returns the recorded failures (bounded at 100).
func (g *Registry) Violations() []Violation { return g.violations }

// OK reports whether no invariant has been violated.
func (g *Registry) OK() bool { return len(g.violations) == 0 }

// record stores a violation, bounded.
func (g *Registry) record(at time.Duration, name string, err error) {
	if len(g.violations) < maxViolations {
		g.violations = append(g.violations, Violation{At: at, Name: name, Err: err})
	}
}

// CheckNow evaluates every invariant once, stamping violations with
// now. It returns the number of invariants that failed this sweep.
func (g *Registry) CheckNow(now time.Duration) int {
	failed := 0
	for _, inv := range g.invs {
		g.checks++
		if err := inv.Check(); err != nil {
			failed++
			g.record(now, inv.Name, err)
		}
	}
	return failed
}

// Arm starts a periodic sweep of all invariants on eng every interval
// (default 1s). Call Disarm (or stop the engine) when done.
func (g *Registry) Arm(eng *sim.Engine, every time.Duration) {
	if g.ticker != nil {
		return
	}
	if every <= 0 {
		every = time.Second
	}
	g.now = eng.Now
	g.ticker = eng.Every(every, "verify.registry", func() {
		g.CheckNow(eng.Now())
	})
}

// Disarm stops the periodic sweep.
func (g *Registry) Disarm() {
	if g.ticker != nil {
		g.ticker.Stop()
		g.ticker = nil
	}
}

// FaultInvariants adapts the registry for fault.Harness: the harness
// drives the check cadence, while the registry keeps the audit counts
// and the violation record. Violations surface in both the harness
// report and the registry.
func (g *Registry) FaultInvariants() []fault.Invariant {
	out := make([]fault.Invariant, 0, len(g.invs))
	for _, inv := range g.invs {
		inv := inv
		out = append(out, fault.Invariant{Name: inv.Name, Check: func() error {
			g.checks++
			err := inv.Check()
			if err != nil {
				at := time.Duration(0)
				if g.now != nil {
					at = g.now()
				}
				g.record(at, inv.Name, err)
			}
			return err
		}})
	}
	return out
}

// SetClock installs the violation timestamp source (used by
// FaultInvariants; Arm sets it automatically).
func (g *Registry) SetClock(now func() time.Duration) { g.now = now }

// Summary is the compact verification record of one run, suitable for
// embedding in benchmark JSON.
type Summary struct {
	// Invariants is the number of distinct armed invariants.
	Invariants int `json:"invariants"`
	// Checks is the total number of invariant evaluations performed.
	Checks uint64 `json:"checks"`
	// Violations summarizes failures, one line per invariant name with
	// its occurrence count and first observed error.
	Violations []string `json:"violations,omitempty"`
}

// Summarize folds the registry's audit trail into a Summary.
func (g *Registry) Summarize() Summary {
	s := Summary{Invariants: len(g.invs), Checks: g.checks}
	counts := map[string]int{}
	first := map[string]Violation{}
	for _, v := range g.violations {
		if counts[v.Name] == 0 {
			first[v.Name] = v
		}
		counts[v.Name]++
	}
	names := make([]string, 0, len(counts))
	for name := range counts {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		v := first[name]
		s.Violations = append(s.Violations,
			fmt.Sprintf("%s x%d (first at %s: %v)", name, counts[name], v.At, v.Err))
	}
	return s
}

// Merge folds another run's summary into s — multi-run experiments
// accumulate checks and violations across runs and keep the widest
// invariant set.
func (s *Summary) Merge(o Summary) {
	if o.Invariants > s.Invariants {
		s.Invariants = o.Invariants
	}
	s.Checks += o.Checks
	s.Violations = append(s.Violations, o.Violations...)
}

// String renders the summary as one line.
func (s Summary) String() string {
	if len(s.Violations) == 0 {
		return fmt.Sprintf("verification: %d invariants, %d checks, 0 violations",
			s.Invariants, s.Checks)
	}
	return fmt.Sprintf("verification: %d invariants, %d checks, VIOLATIONS: %s",
		s.Invariants, s.Checks, strings.Join(s.Violations, "; "))
}
