package verify

import (
	"fmt"
	"strconv"
	"strings"
	"time"

	"iobt/internal/asset"
	"iobt/internal/checkpoint"
	"iobt/internal/core"
	"iobt/internal/fault"
	"iobt/internal/geo"
	"iobt/internal/sim"
	"iobt/internal/track"
)

// Scenario is one fully-specified random mission: world, mission knobs,
// and fault plan, all derived deterministically from Seed. A scenario
// serializes to a small text file (String/ParseScenario) so any
// violation the fuzzer finds is replayable byte-for-byte.
type Scenario struct {
	// Seed drives every random stream in the run (world generation,
	// mobility, channel noise, fault victim selection).
	Seed int64
	// Assets is the approximate population size.
	Assets int
	// Size is the square map's side length in meters.
	Size float64
	// Terrain is open, urban, or sparse.
	Terrain string
	// Command is intent or hierarchy.
	Command string
	// Reliable carries command traffic over the ARQ layer.
	Reliable bool
	// Degrade enables the graceful-degradation reflexes.
	Degrade bool
	// Checkpoint is the checkpoint cadence (0 disables).
	Checkpoint time.Duration
	// Rate is the incident load in incidents per simulated minute.
	Rate float64
	// Horizon is the simulated mission duration.
	Horizon time.Duration
	// Track attaches a fused track picture to the command post.
	Track bool
	// Plan is the fault plan (nil or empty: a nominal run).
	Plan *fault.Plan
}

// Generate derives a random scenario from seed. The derivation is
// deterministic: the same seed always yields the same scenario, and the
// scenario's own Seed field reuses it, so Generate(seed) → Run is one
// reproducible unit.
func Generate(seed int64) Scenario {
	rng := sim.NewRNG(seed).Derive("verify.scenario")
	s := Scenario{
		Seed:    seed,
		Assets:  80 + 10*rng.Intn(14),
		Size:    600 + 100*float64(rng.Intn(9)),
		Terrain: [...]string{"open", "open", "urban", "sparse"}[rng.Intn(4)],
		Rate:    10 + 5*float64(rng.Intn(5)),
		Horizon: time.Duration(60+30*rng.Intn(4)) * time.Second,
		Command: "intent",
		Degrade: rng.Bool(0.5),
		Track:   rng.Bool(0.5),
	}
	if rng.Bool(0.5) {
		s.Command = "hierarchy"
		s.Reliable = rng.Bool(0.5)
		if s.Reliable && rng.Bool(0.5) {
			s.Checkpoint = [...]time.Duration{10 * time.Second, 15 * time.Second, 30 * time.Second}[rng.Intn(3)]
		}
	}
	s.Plan = randomPlan(rng, s)
	return s
}

// randomPlan draws 0–4 windowed/instant faults inside the horizon, plus
// — when the mission checkpoints — an optional crash/failover pair, so
// the fuzzer exercises the restore path too.
func randomPlan(rng *sim.RNG, s Scenario) *fault.Plan {
	p := &fault.Plan{Name: fmt.Sprintf("fuzz-%d", s.Seed)}
	span := s.Horizon - 30*time.Second
	if span <= 0 {
		span = s.Horizon / 2
	}
	at := func() time.Duration {
		return 10*time.Second + time.Duration(rng.Intn(int(span/time.Second)))*time.Second
	}
	dur := func() time.Duration {
		return time.Duration(15+rng.Intn(45)) * time.Second
	}
	area := func() geo.Circle {
		return geo.Circle{
			Center: geo.Point{X: rng.Uniform(0, s.Size), Y: rng.Uniform(0, s.Size)},
			Radius: rng.Uniform(s.Size/8, s.Size/2),
		}
	}
	n := rng.Intn(5)
	for i := 0; i < n; i++ {
		switch rng.Intn(8) {
		case 0:
			p.Add(fault.Fault{Kind: fault.JamWave, At: at(), Duration: dur(),
				Area: area(), Intensity: rng.Uniform(0.3, 1)})
		case 1:
			p.Add(fault.Fault{Kind: fault.Smoke, At: at(), Duration: dur(), Area: area()})
		case 2:
			p.Add(fault.Fault{Kind: fault.KillWave, At: at(),
				Fraction: rng.Uniform(0.1, 0.4), Select: fault.SelectComposite})
		case 3:
			p.Add(fault.Fault{Kind: fault.Partition, At: at(), Duration: dur(),
				X: rng.Uniform(s.Size/4, 3*s.Size/4)})
		case 4:
			p.Add(fault.Fault{Kind: fault.Corrupt, At: at(), Duration: dur(),
				Prob: rng.Uniform(0.05, 0.3)})
		case 5:
			p.Add(fault.Fault{Kind: fault.Delay, At: at(), Duration: dur(),
				Prob: rng.Uniform(0.2, 0.8), Extra: time.Duration(rng.Intn(400)+100) * time.Millisecond})
		case 6:
			p.Add(fault.Fault{Kind: fault.ChurnSpike, At: at(), Duration: dur(),
				Rate: rng.Uniform(0.05, 0.25)})
		case 7:
			p.Add(fault.Fault{Kind: fault.CommandPostLoss, At: at()})
		}
	}
	if s.Checkpoint > 0 && rng.Bool(0.5) {
		crashAt := s.Horizon/2 + time.Duration(rng.Intn(20))*time.Second
		p.Add(fault.Fault{Kind: fault.CrashPost, At: crashAt})
		p.Add(fault.Fault{Kind: fault.Failover,
			At: crashAt + time.Duration(1+rng.Intn(5))*time.Second, Warm: rng.Bool(0.5)})
	}
	if len(p.Faults) == 0 {
		return nil
	}
	return p
}

// InvariantMaker builds an invariant against a live mission; the
// fuzzer's shrink test uses one to arm a deliberately flipped check.
type InvariantMaker func(*core.World, *core.Runtime) Invariant

// Outcome is the verification verdict of one scenario run.
type Outcome struct {
	Scenario Scenario
	// Skipped means the random world could not synthesize the mission
	// (legitimately too sparse); no verification verdict was produced.
	Skipped bool
	// Summary is the registry's audit record.
	Summary Summary
	// Violations are the recorded invariant failures (empty: run clean).
	Violations []Violation
	// Fingerprint digests the final mission metrics (differential
	// properties compare it across paired runs).
	Fingerprint uint64
}

// Run executes the scenario with the full mission invariant catalogue
// armed (plus any extra invariants) and returns the verdict. Runs are
// deterministic per scenario.
func Run(s Scenario, extra ...InvariantMaker) *Outcome {
	return runScenario(s, nil, nil, extra...)
}

// runScenario is the common engine behind Run, ReplayEquivalence, and
// RestoreTransparency: j, when non-nil, records the decision journal;
// prestart, when non-nil, runs after Start but before the horizon (for
// scheduling differential probes like a mid-run restore).
func runScenario(s Scenario, j *checkpoint.Journal, prestart func(*core.World, *core.Runtime), extra ...InvariantMaker) *Outcome {
	var terr *geo.Terrain
	switch s.Terrain {
	case "urban":
		terr = geo.NewUrbanTerrain(s.Size, s.Size, 100)
	case "sparse":
		terr = geo.NewSparseTerrain(s.Size, s.Size)
	default:
		terr = geo.NewOpenTerrain(s.Size, s.Size)
	}
	w := core.NewWorld(core.WorldConfig{Seed: s.Seed, Terrain: terr, Assets: s.Assets})
	defer w.Stop()

	pad := s.Size / 5
	m := core.DefaultMission(geo.NewRect(
		geo.Point{X: pad, Y: pad}, geo.Point{X: s.Size - pad, Y: s.Size - pad}))
	m.Goal.CoverageFrac = 0.4
	m.IncidentsPerMin = s.Rate
	m.Command = core.CommandIntent
	if s.Command == "hierarchy" {
		m.Command = core.CommandHierarchy
	}
	m.ReliableOrders = s.Reliable
	m.Degradation = s.Degrade
	m.CheckpointEvery = s.Checkpoint
	m.TrustAudit = true

	r := core.NewRuntime(w, m)
	r.SetJournal(j)

	if s.Track {
		tracker := track.NewTracker(track.Config{})
		r.AttachTracker(tracker)
		// A deterministic three-target picture fused at the post, so the
		// track invariants have live hypotheses to check.
		w.Eng.Every(time.Second, "verify.targets", func() {
			ts := w.Eng.Now().Seconds()
			tracker.Observe(w.Eng.Now(), []track.Detection{
				{Pos: geo.Point{X: s.Size/6 + 3*ts, Y: s.Size / 4}, Var: 9, Sensor: 1},
				{Pos: geo.Point{X: 3*s.Size/4 - 2*ts, Y: s.Size / 2}, Var: 9, Sensor: 2},
				{Pos: geo.Point{X: s.Size / 2, Y: s.Size/6 + 2.5*ts}, Var: 9, Sensor: 3},
			})
		})
	}

	if err := r.Synthesize(); err != nil {
		return &Outcome{Scenario: s, Skipped: true}
	}
	if err := r.Start(); err != nil {
		return &Outcome{Scenario: s, Skipped: true}
	}
	defer r.Stop()

	invs := MissionInvariants(w, r)
	for _, mk := range extra {
		invs = append(invs, mk(w, r))
	}
	reg := NewRegistry()
	reg.Add(invs...)

	if s.Plan != nil && len(s.Plan.Faults) > 0 {
		fault.Apply(fault.Target{
			Eng: w.Eng, Pop: w.Pop, Net: w.Net, Jam: w.Jam, Smoke: w.Smoke,
			Composite:   func() []asset.ID { return r.Composite().Members },
			CommandPost: func() asset.ID { return r.Sink() },
			CrashPost:   r.CrashPost,
			Failover:    r.Failover,
		}, s.Plan)
	}
	if prestart != nil {
		prestart(w, r)
	}

	reg.Arm(w.Eng, time.Second)
	if err := w.Run(s.Horizon); err != nil {
		reg.record(w.Eng.Now(), "engine-run", err)
	}
	// One final sweep at the horizon so end-state violations are caught
	// even when the last ticker tick predates the final events.
	reg.CheckNow(w.Eng.Now())
	reg.Disarm()

	return &Outcome{
		Scenario:    s,
		Summary:     reg.Summarize(),
		Violations:  reg.Violations(),
		Fingerprint: r.Metrics.Fingerprint(),
	}
}

// SchemaVersion is the reproducer file format version. Bump it when
// String's output changes shape (new fields are fine — unknown keys
// already error — but renames, reordering, or fault-DSL changes must
// bump), so stale corpus files fail loudly instead of misparsing.
const SchemaVersion = 1

// String serializes the scenario as a replayable reproducer file: a
// header line, one key=value line, and the embedded fault plan DSL.
// ParseScenario is its exact inverse.
func (s Scenario) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "scenario v%d\n", SchemaVersion)
	fmt.Fprintf(&b,
		"seed=%d assets=%d size=%s terrain=%s command=%s reliable=%v degrade=%v checkpoint=%s rate=%s horizon=%s track=%v\n",
		s.Seed, s.Assets, ftoa(s.Size), s.Terrain, s.Command, s.Reliable, s.Degrade,
		s.Checkpoint, ftoa(s.Rate), s.Horizon, s.Track)
	if s.Plan != nil && len(s.Plan.Faults) > 0 {
		b.WriteString(s.Plan.String())
	}
	return b.String()
}

func ftoa(v float64) string { return strconv.FormatFloat(v, 'g', -1, 64) }

// ParseScenario reads a reproducer file produced by Scenario.String.
func ParseScenario(src string) (Scenario, error) {
	var s Scenario
	lines := strings.Split(strings.TrimSpace(src), "\n")
	if len(lines) < 2 {
		return s, fmt.Errorf("verify: not a scenario file (want \"scenario v%d\" header)", SchemaVersion)
	}
	header := strings.TrimSpace(lines[0])
	vs, ok := strings.CutPrefix(header, "scenario v")
	version, err := strconv.Atoi(vs)
	if !ok || err != nil {
		return s, fmt.Errorf("verify: not a scenario file (want \"scenario v%d\" header, got %q)", SchemaVersion, header)
	}
	if version != SchemaVersion {
		return s, fmt.Errorf("verify: scenario schema v%d not supported (this build reads v%d); re-shrink the reproducer", version, SchemaVersion)
	}
	for _, kv := range strings.Fields(lines[1]) {
		k, v, ok := strings.Cut(kv, "=")
		if !ok {
			return s, fmt.Errorf("verify: malformed field %q", kv)
		}
		var err error
		switch k {
		case "seed":
			s.Seed, err = strconv.ParseInt(v, 10, 64)
		case "assets":
			s.Assets, err = strconv.Atoi(v)
		case "size":
			s.Size, err = strconv.ParseFloat(v, 64)
		case "terrain":
			s.Terrain = v
		case "command":
			s.Command = v
		case "reliable":
			s.Reliable, err = strconv.ParseBool(v)
		case "degrade":
			s.Degrade, err = strconv.ParseBool(v)
		case "checkpoint":
			s.Checkpoint, err = time.ParseDuration(v)
		case "rate":
			s.Rate, err = strconv.ParseFloat(v, 64)
		case "horizon":
			s.Horizon, err = time.ParseDuration(v)
		case "track":
			s.Track, err = strconv.ParseBool(v)
		default:
			err = fmt.Errorf("unknown key")
		}
		if err != nil {
			return s, fmt.Errorf("verify: field %q: %v", kv, err)
		}
	}
	if rest := strings.TrimSpace(strings.Join(lines[2:], "\n")); rest != "" {
		plan, err := fault.Parse(rest)
		if err != nil {
			return s, err
		}
		s.Plan = plan
	}
	return s, nil
}
