package verify

import (
	"testing"
	"time"

	"iobt/internal/cop"
	"iobt/internal/core"
	"iobt/internal/geo"
	"iobt/internal/mesh"
)

func TestPictureMonotoneInvariant(t *testing.T) {
	p := cop.NewPicture(1)
	p.ObserveTrust(4, 2, 1)
	current := p
	inv := PictureMonotone("test", func() []*cop.Picture { return []*cop.Picture{current, nil} })

	if err := inv.Check(); err != nil {
		t.Fatalf("first sweep: %v", err)
	}
	// Growth is fine.
	p.ObserveTrack(0, cop.TrackFix{Hits: 3}, 5*time.Second)
	p.Cover(cop.Cell{X: 1, Y: 1})
	if err := inv.Check(); err != nil {
		t.Fatalf("grown state flagged: %v", err)
	}
	// Idempotent re-check of unchanged state is fine.
	if err := inv.Check(); err != nil {
		t.Fatalf("unchanged state flagged: %v", err)
	}
	// Regression: the same replica owner presenting less state than
	// before is exactly what anti-entropy must never do.
	current = cop.NewPicture(1)
	if err := inv.Check(); err == nil {
		t.Error("regressed picture not flagged")
	}
}

func TestPictureMonotoneTracksReplicasIndependently(t *testing.T) {
	a, b := cop.NewPicture(1), cop.NewPicture(2)
	a.ObserveTrust(9, 5, 0)
	inv := PictureMonotone("fleet", func() []*cop.Picture { return []*cop.Picture{a, b} })
	if err := inv.Check(); err != nil {
		t.Fatalf("first sweep: %v", err)
	}
	// b catching up via merge moves it up the order; a unchanged.
	b.Merge(a)
	if err := inv.Check(); err != nil {
		t.Errorf("merge flagged as regression: %v", err)
	}
}

func TestGossipConservationInvariant(t *testing.T) {
	// The deep behavioral coverage lives in internal/mesh; here we pin
	// that the registry wrapper surfaces the overlay's own law while a
	// mission-scale world is gossiping under an armed registry.
	terr := geo.NewOpenTerrain(600, 600)
	w := core.NewWorld(core.WorldConfig{Seed: 7, Terrain: terr, Assets: 40})
	defer w.Stop()
	g := mesh.NewGossip(w.Net, mesh.GossipConfig{Fanout: 3, TTL: 8, AntiEntropyEvery: 2 * time.Second})
	for _, id := range w.Net.Nodes() {
		g.Join(id, nil)
	}
	g.Start()

	reg := NewRegistry()
	reg.Add(GossipConservation(g), MeshConservation(w.Net))
	reg.SetClock(w.Eng.Now)
	reg.Arm(w.Eng, time.Second)

	members := g.Members()
	if len(members) == 0 {
		t.Fatal("no linked members to gossip between")
	}
	w.Eng.Every(2*time.Second, "test.publish", func() {
		if _, err := g.Publish(members[0], "cop", 48, nil); err != nil {
			t.Errorf("publish: %v", err)
		}
	})
	if err := w.Run(20 * time.Second); err != nil {
		t.Fatalf("run: %v", err)
	}
	sum := reg.Summarize()
	if len(sum.Violations) != 0 {
		t.Errorf("violations during gossip run: %+v", sum)
	}
	if sum.Checks == 0 {
		t.Error("registry never swept")
	}
	if g.Published.Value() == 0 || g.DeliveredNew.Value() <= g.Published.Value() {
		t.Errorf("overlay inactive: published %d delivered %d", g.Published.Value(), g.DeliveredNew.Value())
	}
}
