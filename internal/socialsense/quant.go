package socialsense

import "math"

// Quantitative truth discovery (the paper's ref [4]: "parallel and
// streaming truth discovery in large-scale quantitative crowdsourcing").
// Sources report continuous values (e.g. flood depth, crowd size) with
// unknown per-source noise; QuantEM jointly estimates each claim's true
// value and each source's precision by alternating weighted means and
// variance re-estimation.

// QuantReport is one continuous-valued observation.
type QuantReport struct {
	Source int
	Claim  int
	Value  float64
}

// QuantResult is the output of QuantEM.
type QuantResult struct {
	// Truth is the estimated value per claim.
	Truth []float64
	// Stddev is the estimated per-source noise standard deviation.
	Stddev []float64
	// Iterations actually run.
	Iterations int
}

// MeanEstimate is the naive baseline: the per-claim arithmetic mean.
func MeanEstimate(claims int, reports []QuantReport) []float64 {
	sum := make([]float64, claims)
	n := make([]float64, claims)
	for _, r := range reports {
		if r.Claim < 0 || r.Claim >= claims {
			continue
		}
		sum[r.Claim] += r.Value
		n[r.Claim]++
	}
	out := make([]float64, claims)
	for j := range out {
		if n[j] > 0 {
			out[j] = sum[j] / n[j]
		}
	}
	return out
}

// QuantEM estimates claim values and source precisions for at most
// maxIters iterations. Sources and claims are indexed densely from 0.
func QuantEM(sources, claims int, reports []QuantReport, maxIters int) *QuantResult {
	if maxIters <= 0 {
		maxIters = 30
	}
	res := &QuantResult{
		Truth:  MeanEstimate(claims, reports),
		Stddev: make([]float64, sources),
	}
	for s := range res.Stddev {
		res.Stddev[s] = 1
	}
	valid := func(r QuantReport) bool {
		return r.Claim >= 0 && r.Claim < claims && r.Source >= 0 && r.Source < sources
	}
	for it := 0; it < maxIters; it++ {
		res.Iterations = it + 1
		// M-step for sources: residual variance against current truth,
		// with one pseudo-observation of variance 1 as smoothing.
		num := make([]float64, sources)
		den := make([]float64, sources)
		for _, r := range reports {
			if !valid(r) {
				continue
			}
			d := r.Value - res.Truth[r.Claim]
			num[r.Source] += d * d
			den[r.Source]++
		}
		maxDelta := 0.0
		for s := 0; s < sources; s++ {
			v := (num[s] + 1) / (den[s] + 1)
			sd := math.Sqrt(v)
			if sd < 1e-3 {
				sd = 1e-3
			}
			res.Stddev[s] = sd
		}
		// E-step for claims: precision-weighted mean.
		wsum := make([]float64, claims)
		wval := make([]float64, claims)
		for _, r := range reports {
			if !valid(r) {
				continue
			}
			w := 1 / (res.Stddev[r.Source] * res.Stddev[r.Source])
			wsum[r.Claim] += w
			wval[r.Claim] += w * r.Value
		}
		for j := 0; j < claims; j++ {
			if wsum[j] == 0 {
				continue
			}
			next := wval[j] / wsum[j]
			if d := math.Abs(next - res.Truth[j]); d > maxDelta {
				maxDelta = d
			}
			res.Truth[j] = next
		}
		if maxDelta < 1e-6 && it > 0 {
			break
		}
	}
	return res
}

// RMSE measures estimate quality against ground truth.
func RMSE(est, truth []float64) float64 {
	n := len(truth)
	if len(est) < n {
		n = len(est)
	}
	if n == 0 {
		return 0
	}
	acc := 0.0
	for i := 0; i < n; i++ {
		d := est[i] - truth[i]
		acc += d * d
	}
	return math.Sqrt(acc / float64(n))
}
