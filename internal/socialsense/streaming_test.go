package socialsense

import (
	"testing"

	"iobt/internal/sim"
)

// streamBatch draws one batch of claims and reports from a fixed source
// population.
func streamBatch(rng *sim.RNG, reliability []float64, claims int, observeProb float64) ([]bool, []Report) {
	truth := make([]bool, claims)
	var reports []Report
	for j := range truth {
		truth[j] = rng.Bool(0.5)
	}
	for s, rel := range reliability {
		for j := 0; j < claims; j++ {
			if !rng.Bool(observeProb) {
				continue
			}
			v := truth[j]
			if !rng.Bool(rel) {
				v = !v
			}
			reports = append(reports, Report{Source: s, Claim: j, Value: v})
		}
	}
	return truth, reports
}

func TestStreamingLearnsSourceReliability(t *testing.T) {
	rng := sim.NewRNG(1)
	// 30 sources: 20 good (0.9), 10 bad (0.2).
	rel := make([]float64, 30)
	for i := range rel {
		if i < 20 {
			rel[i] = 0.9
		} else {
			rel[i] = 0.2
		}
	}
	st := NewStreaming(30, 0.3)
	for b := 0; b < 20; b++ {
		_, reports := streamBatch(rng, rel, 50, 0.4)
		st.Ingest(50, reports)
	}
	if st.Batches != 20 {
		t.Errorf("Batches = %d", st.Batches)
	}
	for i := 0; i < 20; i++ {
		if st.Reliability(i) < 0.75 {
			t.Errorf("good source %d estimated %.2f", i, st.Reliability(i))
		}
	}
	for i := 20; i < 30; i++ {
		if st.Reliability(i) > 0.45 {
			t.Errorf("bad source %d estimated %.2f", i, st.Reliability(i))
		}
	}
}

func TestStreamingAccuracyApproachesBatchEM(t *testing.T) {
	rng := sim.NewRNG(2)
	rel := make([]float64, 40)
	for i := range rel {
		rel[i] = rng.Beta(5, 1.5)
	}
	st := NewStreaming(40, 0.3)
	// Warm up on 10 batches.
	for b := 0; b < 10; b++ {
		_, reports := streamBatch(rng, rel, 40, 0.3)
		st.Ingest(40, reports)
	}
	// Score on a fresh batch, against batch EM on that same batch.
	truth, reports := streamBatch(rng, rel, 200, 0.3)
	prob := st.Ingest(200, reports)
	streamAcc := Accuracy(Estimates(prob), truth)

	d := &Dataset{NumSources: 40, NumClaims: 200, Reports: reports, Truth: truth}
	emAcc := Accuracy(EM(d, 50).Estimates(), truth)
	if streamAcc < emAcc-0.05 {
		t.Errorf("streaming accuracy %.3f far below batch EM %.3f", streamAcc, emAcc)
	}
	if streamAcc < 0.9 {
		t.Errorf("streaming accuracy %.3f too low", streamAcc)
	}
}

func TestStreamingSilentSourcesKeepEstimate(t *testing.T) {
	st := NewStreaming(3, 0.5)
	before := st.Reliability(2)
	// Batch mentioning only sources 0 and 1.
	st.Ingest(2, []Report{
		{Source: 0, Claim: 0, Value: true},
		{Source: 1, Claim: 0, Value: true},
		{Source: 0, Claim: 1, Value: false},
		{Source: 1, Claim: 1, Value: false},
	})
	if st.Reliability(2) != before {
		t.Error("silent source's estimate changed")
	}
}

func TestStreamingEdges(t *testing.T) {
	st := NewStreaming(2, -1) // alpha defaults
	if st.alpha != 0.2 {
		t.Errorf("alpha = %v", st.alpha)
	}
	if st.Reliability(-1) != 0.5 || st.Reliability(99) != 0.5 {
		t.Error("out-of-range source should return 0.5")
	}
	// Out-of-range claim indices are ignored, empty batch is fine.
	prob := st.Ingest(1, []Report{{Source: 0, Claim: 5, Value: true}})
	if len(prob) != 1 || prob[0] != 0.5 {
		t.Errorf("prob = %v, want uninformed 0.5", prob)
	}
	_ = st.Ingest(0, nil)
}
