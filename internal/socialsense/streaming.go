package socialsense

import "math"

// Streaming is the online counterpart of EM for the paper's ref [4]
// ("parallel and streaming truth discovery in large-scale quantitative
// crowdsourcing"): source reliabilities persist across report batches,
// each batch's claims are resolved with a single Bayesian pass using the
// current reliabilities, and the reliabilities are then updated with an
// exponential moving average. Per-batch cost is linear in the batch,
// and sources earn (or lose) standing cumulatively — the operational
// mode for a running IoBT rather than a post-hoc dataset.
type Streaming struct {
	rel   []float64
	alpha float64
	// Batches counts ingests so far.
	Batches int
}

// NewStreaming returns a tracker for the given source universe with
// learning rate alpha in (0,1]; invalid alpha defaults to 0.2. Sources
// start at the honest-majority anchor (0.7).
func NewStreaming(sources int, alpha float64) *Streaming {
	if alpha <= 0 || alpha > 1 {
		alpha = 0.2
	}
	rel := make([]float64, sources)
	for i := range rel {
		rel[i] = 0.7
	}
	return &Streaming{rel: rel, alpha: alpha}
}

// Reliability returns the current estimate for a source (0.5 for
// unknown source indices).
func (s *Streaming) Reliability(source int) float64 {
	if source < 0 || source >= len(s.rel) {
		return 0.5
	}
	return s.rel[source]
}

// Ingest resolves one batch: claims are indexed 0..claims-1 within the
// batch; reports reference those indices and global source IDs. It
// returns the posterior truth probability per claim and updates source
// reliabilities.
func (s *Streaming) Ingest(claims int, reports []Report) []float64 {
	byClaim := make([][]Report, claims)
	for _, r := range reports {
		if r.Claim >= 0 && r.Claim < claims {
			byClaim[r.Claim] = append(byClaim[r.Claim], r)
		}
	}
	prob := make([]float64, claims)
	for j := 0; j < claims; j++ {
		logT, logF := 0.0, 0.0
		for _, r := range byClaim[j] {
			a := clamp01(s.Reliability(r.Source))
			if r.Value {
				logT += math.Log(a)
				logF += math.Log(1 - a)
			} else {
				logT += math.Log(1 - a)
				logF += math.Log(a)
			}
		}
		m := math.Max(logT, logF)
		pt, pf := math.Exp(logT-m), math.Exp(logF-m)
		prob[j] = pt / (pt + pf)
	}
	// Reliability update: expected correctness of each source on this
	// batch, blended into the running estimate.
	num := make([]float64, len(s.rel))
	den := make([]float64, len(s.rel))
	for _, r := range reports {
		if r.Source < 0 || r.Source >= len(s.rel) || r.Claim < 0 || r.Claim >= claims {
			continue
		}
		p := prob[r.Claim]
		if r.Value {
			num[r.Source] += p
		} else {
			num[r.Source] += 1 - p
		}
		den[r.Source]++
	}
	for src := range s.rel {
		if den[src] == 0 {
			continue // silent this batch: no update
		}
		batchRel := num[src] / den[src]
		s.rel[src] = (1-s.alpha)*s.rel[src] + s.alpha*batchRel
	}
	s.Batches++
	return prob
}

// Estimates thresholds batch posteriors at 0.5.
func Estimates(prob []float64) []bool {
	out := make([]bool, len(prob))
	for i, p := range prob {
		out[i] = p >= 0.5
	}
	return out
}
