// Package socialsense implements human-as-sensor truth discovery
// (paper §III.A): given boolean claims reported by sources of unknown
// reliability — "possibly noisy, biased, linguistically ambiguous, and
// conflicting" — jointly estimate which claims are true and how reliable
// each source is.
//
// The estimation-theoretic algorithm follows the expectation-maximization
// formulation of Wang, Abdelzaher & Kaplan ("Using humans as sensors",
// IPSN'14; the paper's refs [1][2]); MajorityVote and WeightedVote are
// the baselines experiment E7 compares against.
package socialsense

import (
	"math"

	"iobt/internal/sim"
)

// Report is one source's statement about one claim.
type Report struct {
	Source int
	Claim  int
	// Value is the asserted polarity of the claim.
	Value bool
}

// Dataset is a truth-discovery problem instance with ground truth
// retained for evaluation.
type Dataset struct {
	NumSources int
	NumClaims  int
	Reports    []Report

	// Truth is the ground-truth claim polarity (hidden from solvers).
	Truth []bool
	// Reliability is each source's ground-truth probability of
	// reporting correctly (hidden from solvers).
	Reliability []float64
	// Colluder marks sources that coordinate to report falsehoods.
	Colluder []bool
}

// GenConfig parameterizes dataset generation.
type GenConfig struct {
	Sources int
	Claims  int
	// ObserveProb is the chance a source witnesses (reports on) a claim.
	ObserveProb float64
	// ReliabilityAlpha/Beta shape the Beta distribution honest source
	// reliabilities are drawn from. Alpha>Beta skews reliable.
	ReliabilityAlpha, ReliabilityBeta float64
	// ColluderFrac is the fraction of sources that always report the
	// inverse of the truth (coordinated deception, paper §II).
	ColluderFrac float64
	// TrueFrac is the fraction of claims whose polarity is true.
	TrueFrac float64
}

// DefaultGenConfig returns the E7 workload shape.
func DefaultGenConfig() GenConfig {
	return GenConfig{
		Sources:          200,
		Claims:           500,
		ObserveProb:      0.15,
		ReliabilityAlpha: 6,
		ReliabilityBeta:  2.5,
		ColluderFrac:     0,
		TrueFrac:         0.5,
	}
}

// Generate draws a dataset from the generative model the estimation
// framework assumes.
func Generate(rng *sim.RNG, cfg GenConfig) *Dataset {
	d := &Dataset{
		NumSources:  cfg.Sources,
		NumClaims:   cfg.Claims,
		Truth:       make([]bool, cfg.Claims),
		Reliability: make([]float64, cfg.Sources),
		Colluder:    make([]bool, cfg.Sources),
	}
	for j := range d.Truth {
		d.Truth[j] = rng.Bool(cfg.TrueFrac)
	}
	nColl := int(cfg.ColluderFrac * float64(cfg.Sources))
	for s := 0; s < cfg.Sources; s++ {
		if s < nColl {
			d.Colluder[s] = true
			d.Reliability[s] = 0.05 // almost always lies
		} else {
			d.Reliability[s] = clamp01(rng.Beta(cfg.ReliabilityAlpha, cfg.ReliabilityBeta))
		}
	}
	for s := 0; s < cfg.Sources; s++ {
		for j := 0; j < cfg.Claims; j++ {
			if !rng.Bool(cfg.ObserveProb) {
				continue
			}
			correct := rng.Bool(d.Reliability[s])
			v := d.Truth[j]
			if !correct {
				v = !v
			}
			d.Reports = append(d.Reports, Report{Source: s, Claim: j, Value: v})
		}
	}
	return d
}

func clamp01(v float64) float64 {
	if v < 0.01 {
		return 0.01
	}
	if v > 0.99 {
		return 0.99
	}
	return v
}

// MajorityVote returns the per-claim majority polarity (ties resolve to
// false). Claims with no reports default to false.
func MajorityVote(d *Dataset) []bool {
	pos := make([]int, d.NumClaims)
	tot := make([]int, d.NumClaims)
	for _, r := range d.Reports {
		tot[r.Claim]++
		if r.Value {
			pos[r.Claim]++
		}
	}
	out := make([]bool, d.NumClaims)
	for j := range out {
		out[j] = tot[j] > 0 && 2*pos[j] > tot[j]
	}
	return out
}

// WeightedVote votes with externally supplied source weights (e.g. trust
// scores); it is the "reputation-informed" baseline.
func WeightedVote(d *Dataset, weight []float64) []bool {
	pos := make([]float64, d.NumClaims)
	tot := make([]float64, d.NumClaims)
	for _, r := range d.Reports {
		w := 1.0
		if r.Source < len(weight) {
			w = weight[r.Source]
		}
		if w <= 0 {
			continue
		}
		tot[r.Claim] += w
		if r.Value {
			pos[r.Claim] += w
		}
	}
	out := make([]bool, d.NumClaims)
	for j := range out {
		out[j] = tot[j] > 0 && pos[j] > tot[j]/2
	}
	return out
}

// Result is the output of EM truth discovery.
type Result struct {
	// TruthProb is the posterior probability each claim is true.
	TruthProb []float64
	// Reliability is the estimated per-source correctness probability.
	Reliability []float64
	// Iterations actually run before convergence.
	Iterations int
}

// Estimates returns the hard truth assignment (prob >= 0.5).
func (r *Result) Estimates() []bool {
	out := make([]bool, len(r.TruthProb))
	for j, p := range r.TruthProb {
		out[j] = p >= 0.5
	}
	return out
}

// EM runs expectation-maximization truth discovery for at most maxIters
// iterations (converging earlier when estimates stabilize).
//
// Model: claim j has latent truth z_j ~ Bernoulli(0.5); source s reports
// correctly with probability a_s. E-step computes P(z_j | reports, a);
// M-step re-estimates a_s as its expected fraction of correct reports.
// Reliabilities are initialized slightly above 0.5, which anchors the
// label symmetry to "sources are on average honest" — the assumption the
// social-sensing literature makes explicit.
func EM(d *Dataset, maxIters int) *Result {
	if maxIters <= 0 {
		maxIters = 50
	}
	// Index reports by claim for the E-step.
	byClaim := make([][]Report, d.NumClaims)
	for _, r := range d.Reports {
		byClaim[r.Claim] = append(byClaim[r.Claim], r)
	}
	bySource := make([][]Report, d.NumSources)
	for _, r := range d.Reports {
		bySource[r.Source] = append(bySource[r.Source], r)
	}

	rel := make([]float64, d.NumSources)
	for s := range rel {
		rel[s] = 0.7 // honest-majority anchor
	}
	prob := make([]float64, d.NumClaims)

	iters := 0
	for it := 0; it < maxIters; it++ {
		iters = it + 1
		// E-step: posterior truth probability per claim.
		maxDelta := 0.0
		for j := 0; j < d.NumClaims; j++ {
			logTrue, logFalse := 0.0, 0.0
			for _, r := range byClaim[j] {
				a := clamp01(rel[r.Source])
				if r.Value {
					logTrue += math.Log(a)
					logFalse += math.Log(1 - a)
				} else {
					logTrue += math.Log(1 - a)
					logFalse += math.Log(a)
				}
			}
			// Uniform prior on z_j.
			m := math.Max(logTrue, logFalse)
			pt := math.Exp(logTrue - m)
			pf := math.Exp(logFalse - m)
			p := pt / (pt + pf)
			if delta := math.Abs(p - prob[j]); delta > maxDelta {
				maxDelta = delta
			}
			prob[j] = p
		}
		// M-step: expected correctness per source, with Laplace
		// smoothing so sparse sources do not saturate.
		for s := 0; s < d.NumSources; s++ {
			num, den := 1.0, 2.0 // Beta(1,1) smoothing
			for _, r := range bySource[s] {
				p := prob[r.Claim]
				if r.Value {
					num += p
				} else {
					num += 1 - p
				}
				den++
			}
			rel[s] = num / den
		}
		if maxDelta < 1e-4 && it > 0 {
			break
		}
	}
	return &Result{TruthProb: prob, Reliability: rel, Iterations: iters}
}

// Accuracy returns the fraction of claims whose estimate matches truth.
func Accuracy(est, truth []bool) float64 {
	if len(truth) == 0 {
		return 0
	}
	n := len(truth)
	if len(est) < n {
		n = len(est)
	}
	ok := 0
	for j := 0; j < n; j++ {
		if est[j] == truth[j] {
			ok++
		}
	}
	return float64(ok) / float64(len(truth))
}

// ReliabilityRMSE measures how well estimated source reliabilities match
// ground truth.
func ReliabilityRMSE(est, truth []float64) float64 {
	if len(truth) == 0 {
		return 0
	}
	n := len(truth)
	if len(est) < n {
		n = len(est)
	}
	acc := 0.0
	for s := 0; s < n; s++ {
		d := est[s] - truth[s]
		acc += d * d
	}
	return math.Sqrt(acc / float64(n))
}
