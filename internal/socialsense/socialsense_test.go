package socialsense

import (
	"testing"
	"testing/quick"

	"iobt/internal/sim"
)

func genTest(seed int64, mutate func(*GenConfig)) *Dataset {
	cfg := DefaultGenConfig()
	cfg.Sources = 100
	cfg.Claims = 200
	if mutate != nil {
		mutate(&cfg)
	}
	return Generate(sim.NewRNG(seed), cfg)
}

func TestGenerateShape(t *testing.T) {
	d := genTest(1, nil)
	if d.NumSources != 100 || d.NumClaims != 200 {
		t.Fatalf("shape = %d x %d", d.NumSources, d.NumClaims)
	}
	if len(d.Reports) == 0 {
		t.Fatal("no reports generated")
	}
	for _, r := range d.Reports {
		if r.Source < 0 || r.Source >= d.NumSources || r.Claim < 0 || r.Claim >= d.NumClaims {
			t.Fatalf("report out of range: %+v", r)
		}
	}
	// Expected report volume ~ sources*claims*observeProb.
	want := 100 * 200 * 0.15
	if float64(len(d.Reports)) < want*0.7 || float64(len(d.Reports)) > want*1.3 {
		t.Errorf("report count = %d, want ~%.0f", len(d.Reports), want)
	}
}

func TestGenerateColluders(t *testing.T) {
	d := genTest(2, func(c *GenConfig) { c.ColluderFrac = 0.2 })
	n := 0
	for s, coll := range d.Colluder {
		if coll {
			n++
			if d.Reliability[s] > 0.1 {
				t.Errorf("colluder %d has reliability %v", s, d.Reliability[s])
			}
		}
	}
	if n != 20 {
		t.Errorf("colluders = %d, want 20", n)
	}
}

func TestEMBeatsMajorityUnderHeterogeneity(t *testing.T) {
	// Heterogeneous reliabilities: many weak sources, a few strong.
	d := genTest(3, func(c *GenConfig) {
		c.ReliabilityAlpha = 1.2
		c.ReliabilityBeta = 0.8 // mean 0.6, wide spread
	})
	maj := Accuracy(MajorityVote(d), d.Truth)
	em := EM(d, 50)
	emAcc := Accuracy(em.Estimates(), d.Truth)
	if emAcc <= maj {
		t.Errorf("EM (%.3f) should beat majority (%.3f) under heterogeneous reliability", emAcc, maj)
	}
	if emAcc < 0.8 {
		t.Errorf("EM accuracy = %.3f, want >= 0.8", emAcc)
	}
}

func TestEMHighAccuracyOnCleanData(t *testing.T) {
	d := genTest(4, nil) // mostly reliable sources
	em := EM(d, 50)
	if acc := Accuracy(em.Estimates(), d.Truth); acc < 0.95 {
		t.Errorf("EM accuracy on clean data = %.3f", acc)
	}
	if em.Iterations <= 0 || em.Iterations > 50 {
		t.Errorf("iterations = %d", em.Iterations)
	}
}

func TestEMReliabilityEstimates(t *testing.T) {
	d := genTest(5, func(c *GenConfig) { c.ObserveProb = 0.4 })
	em := EM(d, 50)
	rmse := ReliabilityRMSE(em.Reliability, d.Reliability)
	if rmse > 0.12 {
		t.Errorf("reliability RMSE = %.3f, want <= 0.12", rmse)
	}
}

func TestEMDegradesGracefullyWithCollusion(t *testing.T) {
	var prev float64 = 1.1
	for _, frac := range []float64{0, 0.2, 0.4} {
		d := genTest(6, func(c *GenConfig) { c.ColluderFrac = frac })
		acc := Accuracy(EM(d, 50).Estimates(), d.Truth)
		if acc > prev+0.05 {
			t.Errorf("accuracy rose with more collusion: %.3f at frac=%.1f (prev %.3f)", acc, frac, prev)
		}
		if frac <= 0.2 && acc < 0.85 {
			t.Errorf("EM accuracy = %.3f at collusion %.1f, want >= 0.85", acc, frac)
		}
		prev = acc
	}
}

func TestEMIdentifiesColluders(t *testing.T) {
	d := genTest(7, func(c *GenConfig) { c.ColluderFrac = 0.2 })
	em := EM(d, 50)
	for s, coll := range d.Colluder {
		if coll && em.Reliability[s] > 0.4 {
			t.Errorf("colluder %d estimated reliability %.3f, want low", s, em.Reliability[s])
		}
	}
}

func TestWeightedVoteUsesWeights(t *testing.T) {
	d := genTest(8, func(c *GenConfig) { c.ColluderFrac = 0.45 })
	// Oracle weights: zero out colluders.
	w := make([]float64, d.NumSources)
	for s := range w {
		if d.Colluder[s] {
			w[s] = 0
		} else {
			w[s] = 1
		}
	}
	weighted := Accuracy(WeightedVote(d, w), d.Truth)
	maj := Accuracy(MajorityVote(d), d.Truth)
	if weighted <= maj {
		t.Errorf("oracle-weighted vote (%.3f) should beat majority (%.3f) at 45%% collusion", weighted, maj)
	}
}

func TestWeightedVoteShortWeights(t *testing.T) {
	d := genTest(9, nil)
	// Missing weights default to 1: should behave like majority.
	got := Accuracy(WeightedVote(d, nil), d.Truth)
	maj := Accuracy(MajorityVote(d), d.Truth)
	if got < maj-0.02 || got > maj+0.02 {
		t.Errorf("default-weight vote %.3f differs from majority %.3f", got, maj)
	}
}

func TestAccuracyEdges(t *testing.T) {
	if Accuracy(nil, nil) != 0 {
		t.Error("empty accuracy should be 0")
	}
	if a := Accuracy([]bool{true}, []bool{true, false}); a != 0.5 {
		t.Errorf("short estimate accuracy = %v, want 0.5 (unscored counts wrong)", a)
	}
}

func TestReliabilityRMSEEdges(t *testing.T) {
	if ReliabilityRMSE(nil, nil) != 0 {
		t.Error("empty RMSE should be 0")
	}
	if r := ReliabilityRMSE([]float64{0.5}, []float64{0.5}); r != 0 {
		t.Errorf("identical RMSE = %v", r)
	}
}

// Property: EM truth probabilities are valid probabilities and the
// estimate count matches the claim count.
func TestEMProbabilityBounds(t *testing.T) {
	prop := func(seed int64) bool {
		cfg := DefaultGenConfig()
		cfg.Sources = 30
		cfg.Claims = 40
		cfg.ObserveProb = 0.2
		d := Generate(sim.NewRNG(seed), cfg)
		em := EM(d, 20)
		if len(em.TruthProb) != d.NumClaims {
			return false
		}
		for _, p := range em.TruthProb {
			if p < 0 || p > 1 {
				return false
			}
		}
		for _, a := range em.Reliability {
			if a < 0 || a > 1 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 20}); err != nil {
		t.Error(err)
	}
}

func TestMajorityVoteNoReports(t *testing.T) {
	d := &Dataset{NumSources: 2, NumClaims: 3, Truth: []bool{true, false, true}}
	got := MajorityVote(d)
	for _, v := range got {
		if v {
			t.Error("claims without reports should default false")
		}
	}
}
