package socialsense

import (
	"testing"

	"iobt/internal/sim"
)

// quantWorld draws a quantitative crowdsourcing instance: truths in
// [0,100], source noise sigma drawn from the given levels.
func quantWorld(rng *sim.RNG, sources, claims int, sigmas []float64, observeProb float64) ([]float64, []float64, []QuantReport) {
	truth := make([]float64, claims)
	for j := range truth {
		truth[j] = rng.Uniform(0, 100)
	}
	sigma := make([]float64, sources)
	for s := range sigma {
		sigma[s] = sigmas[s%len(sigmas)]
	}
	var reports []QuantReport
	for s := 0; s < sources; s++ {
		for j := 0; j < claims; j++ {
			if !rng.Bool(observeProb) {
				continue
			}
			reports = append(reports, QuantReport{
				Source: s, Claim: j, Value: truth[j] + rng.Norm(0, sigma[s]),
			})
		}
	}
	return truth, sigma, reports
}

func TestQuantEMBeatsMeanUnderHeterogeneousNoise(t *testing.T) {
	rng := sim.NewRNG(1)
	// A few precise instruments among many sloppy eyeballs.
	truth, _, reports := quantWorld(rng, 60, 150, []float64{0.5, 15, 15, 15}, 0.5)
	mean := MeanEstimate(150, reports)
	em := QuantEM(60, 150, reports, 30)
	meanErr := RMSE(mean, truth)
	emErr := RMSE(em.Truth, truth)
	if emErr >= meanErr {
		t.Errorf("QuantEM RMSE %.3f not below mean %.3f", emErr, meanErr)
	}
	if emErr > 1.0 {
		t.Errorf("QuantEM RMSE %.3f; precise sources should pin truth", emErr)
	}
}

func TestQuantEMEstimatesSourceNoise(t *testing.T) {
	rng := sim.NewRNG(2)
	_, sigma, reports := quantWorld(rng, 40, 200, []float64{1, 8}, 0.6)
	em := QuantEM(40, 200, reports, 30)
	for s := 0; s < 40; s++ {
		est := em.Stddev[s]
		want := sigma[s]
		if est < want*0.5 || est > want*2 {
			t.Errorf("source %d sigma estimate %.2f, truth %.2f", s, est, want)
		}
	}
	if em.Iterations <= 0 {
		t.Error("no iterations recorded")
	}
}

func TestQuantEMEdges(t *testing.T) {
	em := QuantEM(0, 0, nil, 0)
	if len(em.Truth) != 0 || len(em.Stddev) != 0 {
		t.Error("empty instance should return empty result")
	}
	// Out-of-range reports are ignored.
	em2 := QuantEM(1, 1, []QuantReport{{Source: 5, Claim: 9, Value: 1}}, 5)
	if em2.Truth[0] != 0 {
		t.Errorf("orphan claim truth = %v, want untouched 0", em2.Truth[0])
	}
	if RMSE(nil, nil) != 0 {
		t.Error("empty RMSE")
	}
}

func TestMeanEstimateBasic(t *testing.T) {
	got := MeanEstimate(2, []QuantReport{
		{Source: 0, Claim: 0, Value: 10},
		{Source: 1, Claim: 0, Value: 20},
		{Source: 0, Claim: 5, Value: 99}, // out of range: ignored
	})
	if got[0] != 15 || got[1] != 0 {
		t.Errorf("mean = %v", got)
	}
}
