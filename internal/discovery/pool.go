package discovery

import (
	"iobt/internal/asset"
	"iobt/internal/compose"
	"iobt/internal/trust"
)

// CandidatePool converts the discovery directory into a composition
// candidate pool — the recruitment hand-off of Figure 2. Unlike
// compose.PoolFromPopulation (ground truth, used for oracle baselines),
// this pool contains only what discovery actually knows:
//
//   - only nodes present in the directory (undiscovered assets cannot
//     be recruited);
//   - nodes classified red are excluded;
//   - capability vectors are the *estimated* class's defaults, so a
//     fingerprinting error propagates into composition exactly as it
//     would in the field;
//   - trust comes from the ledger (prior 0.5 when absent).
//
// The position is read from the live asset (responders are assumed to
// report their location; mobility between scans is the directory
// staleness the ExpireAfter horizon bounds).
func (s *Service) CandidatePool(ledger *trust.Ledger) []compose.Candidate {
	var out []compose.Candidate
	for _, rec := range s.Directory() {
		if rec.EstAffiliation == asset.Red {
			continue
		}
		a := s.pop.Get(rec.ID)
		if a == nil || !a.Alive() {
			continue
		}
		class := rec.EstClass
		if class == 0 {
			continue // nothing known about capabilities yet
		}
		tr := 0.5
		if ledger != nil {
			tr = ledger.Score(rec.ID)
		}
		out = append(out, compose.Candidate{
			ID:          rec.ID,
			Pos:         a.Pos(),
			Caps:        asset.DefaultCaps(class),
			Trust:       tr,
			Affiliation: rec.EstAffiliation,
		})
	}
	return out
}
