// Package discovery implements recruitment-side asset discovery and
// characterization (paper §III.A): active probing, passive traffic
// fingerprinting, and side-channel emission detection, combined into a
// continuously maintained directory of discovered assets with estimated
// class, affiliation, and confidence.
//
// The paper's premise is that cyber-discovery alone is insufficient for
// battlefield assets: "they may be intermittently connected, so may not
// consistently respond to probes"; discovery must fuse passive evidence
// and "side channel emanations" to find gray/red nodes. The experiments
// (E3) quantify exactly that gap.
package discovery

import (
	"sort"
	"time"

	"iobt/internal/asset"
	"iobt/internal/sim"
	"iobt/internal/trust"
)

// Methods is a bit set of discovery techniques to enable.
type Methods uint8

// Discovery techniques.
const (
	// MethodProbe actively solicits responses from cooperative nodes.
	MethodProbe Methods = 1 << iota
	// MethodPassive overhears traffic and fingerprints device classes.
	MethodPassive
	// MethodSideChannel detects RF emissions of silent nodes.
	MethodSideChannel

	// MethodsAll enables every technique.
	MethodsAll = MethodProbe | MethodPassive | MethodSideChannel
)

// Config parameterizes the discovery service.
type Config struct {
	// Scanners are the blue assets performing discovery.
	Scanners []asset.ID
	// ScanInterval is the cadence of scan rounds. Zero defaults to 2s.
	ScanInterval time.Duration
	// ExpireAfter drops directory entries not re-seen for this long;
	// zero disables expiry.
	ExpireAfter time.Duration
	// Methods selects the enabled techniques; zero defaults to MethodsAll.
	Methods Methods

	// GrayRespondProb and RedRespondProb are the ground-truth behavior
	// of non-blue nodes answering standard probes (commodity devices
	// answer sometimes; adversaries stay silent).
	GrayRespondProb float64
	RedRespondProb  float64
}

// DefaultConfig returns the configuration used by the experiments,
// leaving Scanners to be filled in.
func DefaultConfig() Config {
	return Config{
		ScanInterval:    2 * time.Second,
		ExpireAfter:     2 * time.Minute,
		Methods:         MethodsAll,
		GrayRespondProb: 0.4,
		RedRespondProb:  0.02,
	}
}

// Record is one discovered asset.
type Record struct {
	ID        asset.ID
	FirstSeen time.Duration
	LastSeen  time.Duration

	// Probes counts probe opportunities; Responses counts answers.
	Probes    int
	Responses int
	// Overheard counts passive observations; EmissionEst is an EWMA of
	// observed emission amplitude.
	Overheard   int
	EmissionEst float64

	// EstClass is the fingerprinted device class (may be wrong early).
	EstClass asset.Class
	// EstAffiliation is the estimated control status.
	EstAffiliation asset.Affiliation
	// ClassKnown reports whether EstClass came from a cooperative
	// response (authoritative) rather than fingerprinting.
	ClassKnown bool
}

// respRate returns the observed response rate over probe opportunities.
func (r *Record) respRate() float64 {
	if r.Probes == 0 {
		return 0
	}
	return float64(r.Responses) / float64(r.Probes)
}

// Service runs continuous discovery over a population.
type Service struct {
	eng    *sim.Engine
	pop    *asset.Population
	cfg    Config
	rng    *sim.RNG
	ledger *trust.Ledger

	dir    map[asset.ID]*Record
	ticker *sim.Ticker

	// Rounds counts completed scan rounds.
	Rounds sim.Counter
}

// New returns an unstarted discovery service. ledger may be nil.
func New(eng *sim.Engine, pop *asset.Population, ledger *trust.Ledger, cfg Config) *Service {
	if cfg.ScanInterval <= 0 {
		cfg.ScanInterval = 2 * time.Second
	}
	if cfg.Methods == 0 {
		cfg.Methods = MethodsAll
	}
	return &Service{
		eng:    eng,
		pop:    pop,
		cfg:    cfg,
		rng:    eng.Stream("discovery"),
		ledger: ledger,
		dir:    make(map[asset.ID]*Record),
	}
}

// Start begins periodic scanning.
func (s *Service) Start() {
	if s.ticker != nil {
		return
	}
	s.ticker = s.eng.Every(s.cfg.ScanInterval, "discovery.scan", s.Scan)
}

// Stop halts scanning.
func (s *Service) Stop() {
	if s.ticker != nil {
		s.ticker.Stop()
		s.ticker = nil
	}
}

// Scan performs one synchronous discovery round across all scanners.
func (s *Service) Scan() {
	now := s.eng.Now()
	for _, sc := range s.cfg.Scanners {
		scanner := s.pop.Get(sc)
		if scanner == nil || !scanner.Alive() || !scanner.Online {
			continue
		}
		var near []asset.ID
		near = s.pop.Near(near, scanner.Pos(), scanner.Caps.RadioRange)
		for _, id := range near {
			if id == sc {
				continue
			}
			s.observe(s.pop.Get(id), now)
		}
	}
	s.expire(now)
	s.Rounds.Inc()
}

// observe applies every enabled technique to one in-range candidate.
// A directory record is created only when some technique yields actual
// evidence — silence under probe-only discovery leaves a node invisible,
// which is precisely the gap the paper identifies.
func (s *Service) observe(a *asset.Asset, now time.Duration) {
	if a == nil || !a.Alive() {
		return
	}
	probed := s.cfg.Methods&MethodProbe != 0
	responded := probed && s.responds(a)

	awake := a.DutyCycle <= 0 || s.rng.Bool(a.DutyCycle)
	overheardPassive := s.cfg.Methods&MethodPassive != 0 && awake &&
		s.rng.Bool(0.3+0.5*a.Emission)

	emissionObs := 0.0
	heardSideChannel := false
	if s.cfg.Methods&MethodSideChannel != 0 && awake {
		// RF emissions leak even from silent radios; measured with noise.
		emissionObs = a.Emission + s.rng.Norm(0, 0.05)
		heardSideChannel = emissionObs > 0.15 // detector floor
	}

	rec := s.dir[a.ID]
	if rec == nil {
		if !responded && !overheardPassive && !heardSideChannel {
			return // no evidence: the node stays undiscovered
		}
		rec = s.record(a.ID, now)
	}

	if probed {
		rec.Probes++
	}
	if responded {
		rec.Responses++
		rec.LastSeen = now
		// Cooperative responses carry an authoritative descriptor —
		// unless the node is compromised and lying about its class.
		if a.Compromised && s.rng.Bool(0.5) {
			rec.EstClass = asset.ClassSensor // forged identity
		} else {
			rec.EstClass = a.Class
		}
		rec.ClassKnown = true
	}
	if overheardPassive {
		rec.Overheard++
		rec.LastSeen = now
		if !rec.ClassKnown {
			// Fingerprinting: accuracy grows with observations.
			pCorrect := 1 - 1/float64(rec.Overheard+1)
			if s.rng.Bool(pCorrect) {
				rec.EstClass = a.Class
			} else {
				rec.EstClass = asset.ClassPhone // commonest confusion
			}
		}
	}
	if heardSideChannel {
		if rec.EmissionEst == 0 {
			rec.EmissionEst = emissionObs
		} else {
			rec.EmissionEst = 0.8*rec.EmissionEst + 0.2*emissionObs
		}
		rec.Overheard++
		rec.LastSeen = now
	}

	s.classify(rec, a)
}

// responds models the ground-truth probe-response behavior.
func (s *Service) responds(a *asset.Asset) bool {
	if a.DutyCycle < 1 && !s.rng.Bool(a.DutyCycle) {
		return false // asleep: intermittent connectivity
	}
	switch {
	case a.Compromised:
		// Captured nodes keep answering to stay hidden.
		return true
	case a.Affiliation == asset.Blue:
		return true
	case a.Affiliation == asset.Gray:
		return s.rng.Bool(s.cfg.GrayRespondProb)
	default:
		return s.rng.Bool(s.cfg.RedRespondProb)
	}
}

// classify estimates affiliation from the evidence mix and updates the
// trust ledger for flagged nodes.
func (s *Service) classify(rec *Record, a *asset.Asset) {
	prev := rec.EstAffiliation
	rate := rec.respRate()
	switch {
	case rec.Probes >= 3 && rate >= 0.6:
		rec.EstAffiliation = asset.Blue
	case rec.Probes >= 5 && rate >= 0.08:
		rec.EstAffiliation = asset.Gray
	case rec.Probes >= 5 && rec.Overheard >= 3:
		// Silent but emitting: adversarial.
		rec.EstAffiliation = asset.Red
	default:
		// Not enough evidence yet; keep previous estimate.
		rec.EstAffiliation = prev
	}
	if s.ledger != nil && rec.EstAffiliation != prev && rec.EstAffiliation != 0 {
		s.ledger.Observe(a.ID, trust.EvDiscovery, rec.EstAffiliation == asset.Blue)
	}
}

func (s *Service) record(id asset.ID, now time.Duration) *Record {
	rec, ok := s.dir[id]
	if !ok {
		rec = &Record{ID: id, FirstSeen: now, LastSeen: now}
		s.dir[id] = rec
	}
	return rec
}

func (s *Service) expire(now time.Duration) {
	if s.cfg.ExpireAfter <= 0 {
		return
	}
	for id, rec := range s.dir {
		if now-rec.LastSeen > s.cfg.ExpireAfter {
			delete(s.dir, id)
		}
	}
}

// Get returns the directory record for id, or nil.
func (s *Service) Get(id asset.ID) *Record {
	return s.dir[id]
}

// Directory returns all current records sorted by ID.
func (s *Service) Directory() []*Record {
	out := make([]*Record, 0, len(s.dir))
	for _, r := range s.dir {
		out = append(out, r)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].ID < out[j].ID })
	return out
}

// Stats quantifies directory quality against ground truth.
type Stats struct {
	// Recall is the fraction of alive assets present in the directory.
	Recall float64
	// ClassAccuracy is the fraction of directory entries whose EstClass
	// matches ground truth.
	ClassAccuracy float64
	// RedPrecision and RedRecall score identification of red (including
	// compromised) nodes.
	RedPrecision float64
	RedRecall    float64
}

// Evaluate compares the directory with the population's ground truth.
func (s *Service) Evaluate() Stats {
	var alive, found, classOK, entries int
	var redTrue, redFlagged, redHit int
	for _, a := range s.pop.All() {
		if !a.Alive() {
			continue
		}
		isScanner := false
		for _, sc := range s.cfg.Scanners {
			if sc == a.ID {
				isScanner = true
				break
			}
		}
		if isScanner {
			continue
		}
		alive++
		truthRed := a.Affiliation == asset.Red || a.Compromised
		if truthRed {
			redTrue++
		}
		rec := s.dir[a.ID]
		if rec == nil {
			continue
		}
		found++
		entries++
		if rec.EstClass == a.Class {
			classOK++
		}
		if rec.EstAffiliation == asset.Red {
			redFlagged++
			if truthRed {
				redHit++
			}
		}
	}
	st := Stats{}
	if alive > 0 {
		st.Recall = float64(found) / float64(alive)
	}
	if entries > 0 {
		st.ClassAccuracy = float64(classOK) / float64(entries)
	}
	if redFlagged > 0 {
		st.RedPrecision = float64(redHit) / float64(redFlagged)
	}
	if redTrue > 0 {
		st.RedRecall = float64(redHit) / float64(redTrue)
	}
	return st
}
