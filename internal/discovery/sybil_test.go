package discovery

import (
	"testing"
	"time"

	"iobt/internal/asset"
	"iobt/internal/attack"
	"iobt/internal/geo"
	"iobt/internal/sim"
)

// sybilWorld builds a scanner, scattered honest phones, and one red host
// with forged identities.
func sybilWorld(t *testing.T, nSybils int) (*sim.Engine, *asset.Population, asset.ID, []asset.ID) {
	t.Helper()
	eng := sim.NewEngine(51)
	terr := geo.NewOpenTerrain(1000, 1000)
	pop := asset.NewPopulation(terr)
	rng := eng.Stream("place")

	caps := asset.DefaultCaps(asset.ClassSensor)
	caps.RadioRange = 700
	scanner := &asset.Asset{Affiliation: asset.Blue, Class: asset.ClassSensor, Caps: caps,
		Online: true, DutyCycle: 1, Mobility: &geo.Static{P: geo.Point{X: 500, Y: 500}}}
	scanner.Energy = caps.EnergyCap
	sc := pop.Add(scanner)

	// Honest gray phones scattered widely with diverse emissions.
	for i := 0; i < 25; i++ {
		a := &asset.Asset{Affiliation: asset.Gray, Class: asset.ClassPhone,
			Caps: asset.DefaultCaps(asset.ClassPhone), Online: true, DutyCycle: 1,
			Emission: rng.Uniform(0.3, 1.0),
			Mobility: &geo.Static{P: geo.Point{X: rng.Uniform(200, 800), Y: rng.Uniform(200, 800)}}}
		a.Energy = a.Caps.EnergyCap
		pop.Add(a)
	}
	// One red host carrying Sybil identities.
	host := &asset.Asset{Affiliation: asset.Red, Class: asset.ClassPhone,
		Caps: asset.DefaultCaps(asset.ClassPhone), Online: true, DutyCycle: 1,
		Emission: 0.75, Mobility: &geo.Static{P: geo.Point{X: 400, Y: 400}}}
	host.Energy = host.Caps.EnergyCap
	hid := pop.Add(host)
	sybils := attack.Sybil(pop, hid, nSybils, rng)
	return eng, pop, sc, append(sybils, hid)
}

func TestDetectSybilsFindsForgedCluster(t *testing.T) {
	eng, pop, sc, sybilIDs := sybilWorld(t, 5)
	cfg := DefaultConfig()
	cfg.Scanners = []asset.ID{sc}
	s := New(eng, pop, nil, cfg)
	for i := 0; i < 25; i++ {
		eng.Schedule(time.Duration(i)*2*time.Second, "scan", s.Scan)
	}
	_ = eng.Run(0)

	groups := s.DetectSybils(3, 15, 0.12)
	if len(groups) == 0 {
		t.Fatal("no Sybil group detected")
	}
	// The largest group should consist of the sybils (+host).
	g := groups[0]
	sybilSet := map[asset.ID]bool{}
	for _, id := range sybilIDs {
		sybilSet[id] = true
	}
	hits := 0
	for _, id := range g.Members {
		if sybilSet[id] {
			hits++
		} else {
			t.Errorf("honest node %d clustered as Sybil", id)
		}
	}
	if hits < 4 {
		t.Errorf("group captured only %d of %d forged identities", hits, len(sybilIDs))
	}
}

func TestDetectSybilsCleanWorld(t *testing.T) {
	eng, pop, sc, _ := sybilWorld(t, 0) // host exists but has no sybils
	cfg := DefaultConfig()
	cfg.Scanners = []asset.ID{sc}
	s := New(eng, pop, nil, cfg)
	for i := 0; i < 20; i++ {
		eng.Schedule(time.Duration(i)*2*time.Second, "scan", s.Scan)
	}
	_ = eng.Run(0)
	groups := s.DetectSybils(3, 15, 0.12)
	if len(groups) != 0 {
		t.Errorf("clean world produced Sybil groups: %v", groups)
	}
}

func TestDetectSybilsDefaults(t *testing.T) {
	eng, pop, sc, _ := sybilWorld(t, 4)
	cfg := DefaultConfig()
	cfg.Scanners = []asset.ID{sc}
	s := New(eng, pop, nil, cfg)
	for i := 0; i < 20; i++ {
		eng.Schedule(time.Duration(i)*2*time.Second, "scan", s.Scan)
	}
	_ = eng.Run(0)
	// Zero/invalid parameters fall back to defaults without panicking.
	_ = s.DetectSybils(0, 0, 0)
}
