package discovery

import (
	"testing"
	"time"

	"iobt/internal/asset"
	"iobt/internal/geo"
	"iobt/internal/sim"
	"iobt/internal/trust"
)

// clusterWorld places one blue scanner in the middle of a cluster of
// nodes, all within its radio range.
func clusterWorld(t *testing.T, seed int64, blue, gray, red int, duty float64) (*sim.Engine, *asset.Population, asset.ID) {
	t.Helper()
	eng := sim.NewEngine(seed)
	terr := geo.NewOpenTerrain(1000, 1000)
	pop := asset.NewPopulation(terr)
	rng := eng.Stream("place")

	caps := asset.DefaultCaps(asset.ClassSensor)
	caps.RadioRange = 600
	scanner := &asset.Asset{Affiliation: asset.Blue, Class: asset.ClassSensor, Caps: caps,
		Online: true, DutyCycle: 1, Mobility: &geo.Static{P: geo.Point{X: 500, Y: 500}}}
	scanner.Energy = caps.EnergyCap
	scannerID := pop.Add(scanner)

	add := func(aff asset.Affiliation, class asset.Class, emission float64) {
		a := &asset.Asset{Affiliation: aff, Class: class, Caps: asset.DefaultCaps(class),
			Online: true, DutyCycle: duty, Emission: emission,
			Mobility: &geo.Static{P: geo.Point{X: rng.Uniform(300, 700), Y: rng.Uniform(300, 700)}}}
		a.Energy = a.Caps.EnergyCap
		pop.Add(a)
	}
	for i := 0; i < blue; i++ {
		add(asset.Blue, asset.ClassMote, 0.3)
	}
	for i := 0; i < gray; i++ {
		add(asset.Gray, asset.ClassPhone, 0.8)
	}
	for i := 0; i < red; i++ {
		add(asset.Red, asset.ClassPhone, 0.7)
	}
	return eng, pop, scannerID
}

func runScans(eng *sim.Engine, s *Service, rounds int) {
	for i := 0; i < rounds; i++ {
		eng.Schedule(time.Duration(i)*time.Second, "scan", s.Scan)
	}
	_ = eng.Run(0)
}

func TestDiscoverBlueNodes(t *testing.T) {
	eng, pop, scanner := clusterWorld(t, 1, 20, 0, 0, 1.0)
	cfg := DefaultConfig()
	cfg.Scanners = []asset.ID{scanner}
	s := New(eng, pop, nil, cfg)
	runScans(eng, s, 10)
	st := s.Evaluate()
	if st.Recall < 0.95 {
		t.Errorf("recall = %.2f, want ~1 for always-on blue nodes", st.Recall)
	}
	if st.ClassAccuracy < 0.9 {
		t.Errorf("class accuracy = %.2f, want high (authoritative responses)", st.ClassAccuracy)
	}
	for _, r := range s.Directory() {
		if r.EstAffiliation != asset.Blue {
			t.Errorf("node %d classified %v, want blue", r.ID, r.EstAffiliation)
		}
	}
}

func TestRedDetectionNeedsSideChannel(t *testing.T) {
	// Probe-only: red nodes stay silent, so they are mostly invisible.
	eng1, pop1, sc1 := clusterWorld(t, 2, 10, 0, 10, 1.0)
	cfg1 := DefaultConfig()
	cfg1.Scanners = []asset.ID{sc1}
	cfg1.Methods = MethodProbe
	probeOnly := New(eng1, pop1, nil, cfg1)
	runScans(eng1, probeOnly, 15)
	stProbe := probeOnly.Evaluate()

	// Full stack: passive + side channel expose them.
	eng2, pop2, sc2 := clusterWorld(t, 2, 10, 0, 10, 1.0)
	cfg2 := DefaultConfig()
	cfg2.Scanners = []asset.ID{sc2}
	full := New(eng2, pop2, nil, cfg2)
	runScans(eng2, full, 15)
	stFull := full.Evaluate()

	if stFull.RedRecall <= stProbe.RedRecall {
		t.Errorf("side-channel should raise red recall: probe=%.2f full=%.2f",
			stProbe.RedRecall, stFull.RedRecall)
	}
	if stFull.RedRecall < 0.5 {
		t.Errorf("full-stack red recall = %.2f, want >= 0.5", stFull.RedRecall)
	}
	if stFull.RedPrecision < 0.7 {
		t.Errorf("red precision = %.2f, want >= 0.7", stFull.RedPrecision)
	}
}

func TestLowDutyCycleHurtsProbeOnly(t *testing.T) {
	recallAt := func(duty float64, methods Methods) float64 {
		eng, pop, sc := clusterWorld(t, 3, 30, 0, 0, duty)
		cfg := DefaultConfig()
		cfg.Scanners = []asset.ID{sc}
		cfg.Methods = methods
		s := New(eng, pop, nil, cfg)
		runScans(eng, s, 10)
		return s.Evaluate().Recall
	}
	probeLow := recallAt(0.1, MethodProbe)
	fullLow := recallAt(0.1, MethodsAll)
	if fullLow <= probeLow {
		t.Errorf("passive+side-channel should beat probe-only at low duty: %.2f vs %.2f", fullLow, probeLow)
	}
}

func TestGrayClassification(t *testing.T) {
	eng, pop, sc := clusterWorld(t, 4, 0, 20, 0, 1.0)
	cfg := DefaultConfig()
	cfg.Scanners = []asset.ID{sc}
	s := New(eng, pop, nil, cfg)
	runScans(eng, s, 30)
	gray := 0
	for _, r := range s.Directory() {
		if r.EstAffiliation == asset.Gray {
			gray++
		}
	}
	if gray < 10 {
		t.Errorf("only %d/20 gray nodes classified gray", gray)
	}
}

func TestExpiry(t *testing.T) {
	eng, pop, sc := clusterWorld(t, 5, 5, 0, 0, 1.0)
	cfg := DefaultConfig()
	cfg.Scanners = []asset.ID{sc}
	cfg.ExpireAfter = 30 * time.Second
	s := New(eng, pop, nil, cfg)
	s.Scan()
	if len(s.Directory()) == 0 {
		t.Fatal("nothing discovered")
	}
	// Kill everything; entries must expire after the horizon.
	for _, a := range pop.All() {
		if a.ID != sc {
			pop.Kill(a.ID)
		}
	}
	eng.Schedule(time.Minute, "rescan", s.Scan)
	_ = eng.Run(0)
	if n := len(s.Directory()); n != 0 {
		t.Errorf("%d stale entries survived expiry", n)
	}
}

func TestContinuousDiscoveryService(t *testing.T) {
	eng, pop, sc := clusterWorld(t, 6, 10, 0, 0, 1.0)
	cfg := DefaultConfig()
	cfg.Scanners = []asset.ID{sc}
	s := New(eng, pop, nil, cfg)
	s.Start()
	s.Start() // idempotent
	_ = eng.Run(20 * time.Second)
	if s.Rounds.Value() == 0 {
		t.Fatal("service never scanned")
	}
	s.Stop()
	at := s.Rounds.Value()
	_ = eng.Run(20 * time.Second)
	if s.Rounds.Value() != at {
		t.Error("service scanned after Stop")
	}
}

func TestTrustFeedback(t *testing.T) {
	eng, pop, sc := clusterWorld(t, 7, 5, 0, 10, 1.0)
	ledger := trust.NewLedger()
	cfg := DefaultConfig()
	cfg.Scanners = []asset.ID{sc}
	s := New(eng, pop, ledger, cfg)
	runScans(eng, s, 20)
	// Some red node should have been flagged, lowering its trust.
	flagged := 0
	for _, a := range pop.All() {
		if a.Affiliation == asset.Red && ledger.Score(a.ID) < 0.5 {
			flagged++
		}
	}
	if flagged == 0 {
		t.Error("no red node lost trust after discovery")
	}
}

func TestCompromisedNodesLie(t *testing.T) {
	eng, pop, sc := clusterWorld(t, 8, 10, 0, 0, 1.0)
	// Compromise a blue mote; it keeps responding (possibly with a
	// forged class) and should remain classified blue — the stealthy case.
	victim := pop.Get(1)
	victim.Compromised = true
	cfg := DefaultConfig()
	cfg.Scanners = []asset.ID{sc}
	s := New(eng, pop, nil, cfg)
	runScans(eng, s, 10)
	rec := s.Get(victim.ID)
	if rec == nil {
		t.Fatal("compromised node not discovered")
	}
	if rec.EstAffiliation != asset.Blue {
		t.Errorf("stealthy compromised node classified %v; staying blue is the expected failure mode", rec.EstAffiliation)
	}
}

func TestDeadScannerSkipped(t *testing.T) {
	eng, pop, sc := clusterWorld(t, 9, 5, 0, 0, 1.0)
	pop.Kill(sc)
	cfg := DefaultConfig()
	cfg.Scanners = []asset.ID{sc}
	s := New(eng, pop, nil, cfg)
	s.Scan()
	_ = eng
	if len(s.Directory()) != 0 {
		t.Error("dead scanner discovered nodes")
	}
}

func TestGetMissing(t *testing.T) {
	eng, pop, sc := clusterWorld(t, 10, 1, 0, 0, 1.0)
	cfg := DefaultConfig()
	cfg.Scanners = []asset.ID{sc}
	s := New(eng, pop, nil, cfg)
	_ = eng
	if s.Get(asset.ID(12345)) != nil {
		t.Error("Get of unknown id should be nil")
	}
}
