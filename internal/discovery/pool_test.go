package discovery

import (
	"testing"
	"time"

	"iobt/internal/asset"
	"iobt/internal/compose"
	"iobt/internal/geo"
	"iobt/internal/sim"
	"iobt/internal/trust"
)

func TestCandidatePoolExcludesRedAndUnknown(t *testing.T) {
	eng, pop, sc := clusterWorld(t, 21, 10, 5, 8, 1.0)
	cfg := DefaultConfig()
	cfg.Scanners = []asset.ID{sc}
	s := New(eng, pop, nil, cfg)
	runScans(eng, s, 20)

	pool := s.CandidatePool(nil)
	if len(pool) == 0 {
		t.Fatal("empty candidate pool after discovery")
	}
	for _, c := range pool {
		if c.Affiliation == asset.Red {
			t.Errorf("red-classified node %d in pool", c.ID)
		}
		truth := pop.Get(c.ID)
		if truth.Affiliation == asset.Red && !truth.Compromised {
			// A red node sneaking in means it fooled classification —
			// possible but should be rare with side channels on.
			t.Logf("note: red node %d evaded classification", c.ID)
		}
		if c.Trust != 0.5 {
			t.Errorf("nil ledger trust = %v", c.Trust)
		}
	}
}

func TestCandidatePoolUsesLedger(t *testing.T) {
	eng, pop, sc := clusterWorld(t, 22, 5, 0, 0, 1.0)
	ledger := trust.NewLedger()
	cfg := DefaultConfig()
	cfg.Scanners = []asset.ID{sc}
	s := New(eng, pop, ledger, cfg)
	runScans(eng, s, 10)
	pool := s.CandidatePool(ledger)
	for _, c := range pool {
		if c.Trust <= 0.5 {
			t.Errorf("discovered blue node %d trust = %v, want raised by EvDiscovery", c.ID, c.Trust)
		}
	}
}

func TestCandidatePoolSkipsDead(t *testing.T) {
	eng, pop, sc := clusterWorld(t, 23, 5, 0, 0, 1.0)
	cfg := DefaultConfig()
	cfg.Scanners = []asset.ID{sc}
	s := New(eng, pop, nil, cfg)
	runScans(eng, s, 5)
	// Kill one discovered node after discovery.
	var victim asset.ID = asset.None
	for _, rec := range s.Directory() {
		victim = rec.ID
		break
	}
	if victim == asset.None {
		t.Fatal("nothing discovered")
	}
	pop.Kill(victim)
	for _, c := range s.CandidatePool(nil) {
		if c.ID == victim {
			t.Error("dead node still recruitable")
		}
	}
}

// TestDiscoveryToCompositionPipeline is the Figure-2 integration test:
// scan, recruit from the directory, compose, and verify the composite's
// assurance against ground truth.
func TestDiscoveryToCompositionPipeline(t *testing.T) {
	// A sensor-post world (150 m sensing, 250 m radio) so the discovered
	// pool can form a connected covering composite.
	eng := sim.NewEngine(24)
	terr := geo.NewOpenTerrain(1000, 1000)
	pop := asset.NewPopulation(terr)
	rng := eng.Stream("place")
	scaps := asset.DefaultCaps(asset.ClassSensor)
	scaps.RadioRange = 700
	scanner := &asset.Asset{Affiliation: asset.Blue, Class: asset.ClassSensor, Caps: scaps,
		Online: true, DutyCycle: 1, Mobility: &geo.Static{P: geo.Point{X: 500, Y: 500}}}
	scanner.Energy = scaps.EnergyCap
	sc := pop.Add(scanner)
	addCluster := func(n int, aff asset.Affiliation) {
		for i := 0; i < n; i++ {
			a := &asset.Asset{Affiliation: aff, Class: asset.ClassSensor,
				Caps: asset.DefaultCaps(asset.ClassSensor), Online: true, DutyCycle: 1,
				Emission: 0.6,
				Mobility: &geo.Static{P: geo.Point{X: rng.Uniform(300, 700), Y: rng.Uniform(300, 700)}}}
			a.Energy = a.Caps.EnergyCap
			pop.Add(a)
		}
	}
	addCluster(30, asset.Blue)
	addCluster(5, asset.Red)
	ledger := trust.NewLedger()
	cfg := DefaultConfig()
	cfg.Scanners = []asset.ID{sc}
	s := New(eng, pop, ledger, cfg)
	s.Start()
	_ = eng.Run(time.Minute)
	s.Stop()

	goal := compose.Goal{
		Area:         geo.NewRect(geo.Point{X: 300, Y: 300}, geo.Point{X: 700, Y: 700}),
		CoverageFrac: 0.6,
	}
	req := compose.Derive(goal)
	pool := s.CandidatePool(ledger)
	comp, err := compose.GreedySolver{}.Solve(req, pool)
	if err != nil {
		t.Fatalf("composition from discovered pool: %v", err)
	}
	// Every recruited member must be a real, alive, non-red asset.
	for _, id := range comp.Members {
		a := pop.Get(id)
		if a == nil || !a.Alive() {
			t.Errorf("member %d is dead or missing", id)
			continue
		}
		if a.Affiliation == asset.Red && !a.Compromised {
			t.Errorf("overt red asset %d recruited", id)
		}
	}
	if !comp.Assurance.Feasible {
		t.Errorf("composite infeasible: %v", comp.Assurance.Violations)
	}
}
