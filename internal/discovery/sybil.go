package discovery

import (
	"sort"

	"iobt/internal/asset"
)

// SybilGroup is a cluster of directory entries suspected to be forged
// identities on one physical radio: co-located, near-identical emission
// signatures, appearing together.
type SybilGroup struct {
	Members []asset.ID
}

// DetectSybils scans the directory for Sybil clusters (paper §III.A:
// impersonation attacks are a named threat to discovery): groups of at
// least minSize entries whose observed positions sit within radius
// meters of each other AND whose side-channel emission estimates agree
// within emissionTol. Distinct physical devices in a crowd share
// location but not emission fingerprints; software identities on one
// radio share both.
func (s *Service) DetectSybils(minSize int, radius, emissionTol float64) []SybilGroup {
	if minSize < 2 {
		minSize = 3
	}
	if radius <= 0 {
		radius = 15
	}
	if emissionTol <= 0 {
		emissionTol = 0.08
	}
	recs := s.Directory()
	// Only entries with a side-channel fingerprint can be clustered.
	var cands []*Record
	for _, r := range recs {
		if r.EmissionEst > 0 {
			cands = append(cands, r)
		}
	}
	// Union-find over pairs that match both criteria.
	parent := make([]int, len(cands))
	for i := range parent {
		parent[i] = i
	}
	var find func(int) int
	find = func(x int) int {
		for parent[x] != x {
			parent[x] = parent[parent[x]]
			x = parent[x]
		}
		return x
	}
	union := func(a, b int) {
		ra, rb := find(a), find(b)
		if ra != rb {
			parent[ra] = rb
		}
	}
	for i := 0; i < len(cands); i++ {
		ai := s.pop.Get(cands[i].ID)
		if ai == nil {
			continue
		}
		for j := i + 1; j < len(cands); j++ {
			aj := s.pop.Get(cands[j].ID)
			if aj == nil {
				continue
			}
			if ai.Pos().Dist(aj.Pos()) > radius {
				continue
			}
			de := cands[i].EmissionEst - cands[j].EmissionEst
			if de < 0 {
				de = -de
			}
			if de <= emissionTol {
				union(i, j)
			}
		}
	}
	groups := map[int][]asset.ID{}
	for i := range cands {
		r := find(i)
		groups[r] = append(groups[r], cands[i].ID)
	}
	var out []SybilGroup
	for _, members := range groups {
		if len(members) < minSize {
			continue
		}
		sort.Slice(members, func(a, b int) bool { return members[a] < members[b] })
		out = append(out, SybilGroup{Members: members})
	}
	sort.Slice(out, func(a, b int) bool {
		if len(out[a].Members) != len(out[b].Members) {
			return len(out[a].Members) > len(out[b].Members)
		}
		return out[a].Members[0] < out[b].Members[0]
	})
	return out
}
