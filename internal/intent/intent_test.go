package intent

import (
	"errors"
	"strings"
	"testing"
	"time"

	"iobt/internal/asset"
	"iobt/internal/core"
)

const fullSpec = `
mission "rescue-east"
area (100,100)-(900,700)
cover 70% x2
sense visual+thermal
compute 5000
bandwidth 2000
latency < 100ms
trust >= 0.4
risk <= 20%
members <= 50
command hierarchy levels 4
deadline 45s
rate 12/min
`

func TestParseFullSpec(t *testing.T) {
	m, err := Parse(fullSpec)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	g := m.Goal
	if g.Name != "rescue-east" {
		t.Errorf("name = %q", g.Name)
	}
	if g.Area.Min.X != 100 || g.Area.Max.Y != 700 {
		t.Errorf("area = %+v", g.Area)
	}
	if g.CoverageFrac != 0.7 || g.Redundancy != 2 {
		t.Errorf("coverage = %v x%d", g.CoverageFrac, g.Redundancy)
	}
	if !g.Modalities.Has(asset.ModVisual | asset.ModThermal) {
		t.Errorf("modalities = %v", g.Modalities)
	}
	if g.Compute != 5000 || g.Bandwidth != 2000 {
		t.Errorf("resources = %v / %v", g.Compute, g.Bandwidth)
	}
	if g.MaxLatency != 100*time.Millisecond {
		t.Errorf("latency = %v", g.MaxLatency)
	}
	if g.MinTrust != 0.4 {
		t.Errorf("trust = %v", g.MinTrust)
	}
	if g.MaxRiskFrac != 0.2 {
		t.Errorf("risk = %v", g.MaxRiskFrac)
	}
	if g.MaxMembers != 50 {
		t.Errorf("members = %v", g.MaxMembers)
	}
	if m.Command != core.CommandHierarchy || m.HierarchyLevels != 4 {
		t.Errorf("command = %v levels %d", m.Command, m.HierarchyLevels)
	}
	if m.IncidentDeadline != 45*time.Second {
		t.Errorf("deadline = %v", m.IncidentDeadline)
	}
	if m.IncidentsPerMin != 12 {
		t.Errorf("rate = %v", m.IncidentsPerMin)
	}
}

func TestParseMinimalSpec(t *testing.T) {
	m, err := Parse(`area (0,0)-(100,100)`)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	// Defaults from core.DefaultMission survive.
	if m.Command != core.CommandIntent {
		t.Errorf("default command = %v", m.Command)
	}
	if m.Goal.CoverageFrac <= 0 {
		t.Error("default coverage missing")
	}
}

func TestParseSemicolonsAndComments(t *testing.T) {
	m, err := Parse(`# a comment
area (0,0)-(10,10); cover 50%; command intent`)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	if m.Goal.CoverageFrac != 0.5 {
		t.Errorf("coverage = %v", m.Goal.CoverageFrac)
	}
}

func TestParseErrors(t *testing.T) {
	cases := []struct {
		name string
		spec string
		want string
	}{
		{"missing area", `cover 50%`, "missing mandatory"},
		{"bad area", `area (0,0)-(0,0)`, "degenerate"},
		{"bad area syntax", `area 0,0 10,10`, "want (x1,y1)"},
		{"unknown keyword", `area (0,0)-(1,1); teleport yes`, "unknown keyword"},
		{"unknown modality", `area (0,0)-(1,1); sense psychic`, "unknown modality"},
		{"bad command", `area (0,0)-(1,1); command anarchy`, "unknown command"},
		{"bad percent", `area (0,0)-(1,1); cover banana%`, "invalid syntax"},
		{"bad rate", `area (0,0)-(1,1); rate fast/min`, "invalid syntax"},
		{"bad duration", `area (0,0)-(1,1); deadline soon`, "invalid duration"},
		{"bad point", `area (a,0)-(1,1)`, "invalid syntax"},
	}
	for _, tc := range cases {
		_, err := Parse(tc.spec)
		if err == nil {
			t.Errorf("%s: no error", tc.name)
			continue
		}
		var pe *ParseError
		if !errors.As(err, &pe) {
			t.Errorf("%s: error is not a ParseError: %v", tc.name, err)
		}
		if !strings.Contains(err.Error(), tc.want) {
			t.Errorf("%s: error %q does not mention %q", tc.name, err, tc.want)
		}
	}
}

func TestParseGoal(t *testing.T) {
	g, err := ParseGoal(`area (0,0)-(500,500); cover 60%; sense seismic`)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	if g.Modalities != asset.ModSeismic {
		t.Errorf("modalities = %v", g.Modalities)
	}
	if _, err := ParseGoal(`cover 60%`); err == nil {
		t.Error("goal without area should fail")
	}
}

func TestStripCmpVariants(t *testing.T) {
	for _, s := range []string{"< 0.4", "<= 0.4", "> 0.4", ">= 0.4", "= 0.4", "0.4"} {
		if got := stripCmp(s); got != "0.4" {
			t.Errorf("stripCmp(%q) = %q", s, got)
		}
	}
}

func TestPercentPlainNumber(t *testing.T) {
	v, err := parsePercent("0.35")
	if err != nil || v != 0.35 {
		t.Errorf("parsePercent plain = %v, %v", v, err)
	}
}
