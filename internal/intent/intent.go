// Package intent implements the "reasoning from goals to means" front
// end (paper §III.B): a small mission-specification language in which a
// commander states intent declaratively — what to sense, where, how
// well, with what resources and risk tolerance — which is parsed into
// the machine-checkable compose.Goal the synthesis layer consumes. It
// is the macroprogramming entry point the paper cites ([5]-[7]): intent
// in, composed capability out.
//
// Grammar (one clause per semicolon or newline, case-insensitive
// keywords):
//
//	mission "name"
//	area (x1,y1)-(x2,y2)
//	cover 70% [x2]                 // coverage fraction, optional k-redundancy
//	sense visual+thermal           // required modalities
//	compute 5000                   // aggregate MIPS
//	bandwidth 2000                 // aggregate kb/s
//	latency < 100ms                // worst-case composite latency
//	trust >= 0.4                   // candidate trust floor
//	risk <= 20%                    // max gray/low-trust member fraction
//	members <= 50                  // composite size cap
//	command intent | command hierarchy levels 3
//	deadline 30s                   // incident deadline
//	rate 12/min                    // incident arrival rate
package intent

import (
	"fmt"
	"strconv"
	"strings"
	"time"

	"iobt/internal/asset"
	"iobt/internal/compose"
	"iobt/internal/core"
	"iobt/internal/geo"
)

// ParseError reports where a spec failed to parse.
type ParseError struct {
	Clause string
	Reason string
}

// Error implements error.
func (e *ParseError) Error() string {
	return fmt.Sprintf("intent: clause %q: %s", e.Clause, e.Reason)
}

// modalityNames maps spec tokens to modality bits.
var modalityNames = map[string]asset.Modality{
	"visual":   asset.ModVisual,
	"acoustic": asset.ModAcoustic,
	"seismic":  asset.ModSeismic,
	"rf":       asset.ModRF,
	"thermal":  asset.ModThermal,
	"chemical": asset.ModChemical,
	"physio":   asset.ModPhysiological,
	"radar":    asset.ModRadar,
	"lidar":    asset.ModLidar,
}

// Parse turns a mission spec into a core.Mission. Unstated fields keep
// core.DefaultMission defaults; an area clause is mandatory.
func Parse(spec string) (core.Mission, error) {
	var (
		m       core.Mission
		hasArea bool
	)
	// Defaults come from core; the area placeholder is filled below.
	m = core.DefaultMission(geo.Rect{})

	for _, clause := range splitClauses(spec) {
		if clause == "" {
			continue
		}
		fields := strings.Fields(clause)
		key := strings.ToLower(fields[0])
		rest := strings.TrimSpace(clause[len(fields[0]):])
		var err error
		switch key {
		case "mission":
			m.Goal.Name = strings.Trim(rest, `" `)
		case "area":
			m.Goal.Area, err = parseArea(rest)
			hasArea = err == nil
		case "cover":
			err = parseCover(&m.Goal, rest)
		case "sense":
			m.Goal.Modalities, err = parseModalities(rest)
		case "compute":
			m.Goal.Compute, err = parseFloat(rest)
		case "bandwidth":
			m.Goal.Bandwidth, err = parseFloat(rest)
		case "latency":
			m.Goal.MaxLatency, err = parseDuration(stripCmp(rest))
		case "trust":
			m.Goal.MinTrust, err = parseFloat(stripCmp(rest))
		case "risk":
			m.Goal.MaxRiskFrac, err = parsePercent(stripCmp(rest))
		case "members":
			var v float64
			v, err = parseFloat(stripCmp(rest))
			m.Goal.MaxMembers = int(v)
		case "command":
			err = parseCommand(&m, rest)
		case "deadline":
			m.IncidentDeadline, err = parseDuration(rest)
		case "rate":
			m.IncidentsPerMin, err = parseRate(rest)
		default:
			err = fmt.Errorf("unknown keyword %q", key)
		}
		if err != nil {
			return core.Mission{}, &ParseError{Clause: clause, Reason: err.Error()}
		}
	}
	if !hasArea {
		return core.Mission{}, &ParseError{Clause: spec, Reason: "missing mandatory 'area' clause"}
	}
	return m, nil
}

// ParseGoal parses only the synthesis goal from a spec.
func ParseGoal(spec string) (compose.Goal, error) {
	m, err := Parse(spec)
	if err != nil {
		return compose.Goal{}, err
	}
	return m.Goal, nil
}

func splitClauses(spec string) []string {
	raw := strings.FieldsFunc(spec, func(r rune) bool { return r == ';' || r == '\n' })
	out := make([]string, 0, len(raw))
	for _, c := range raw {
		c = strings.TrimSpace(c)
		if c != "" && !strings.HasPrefix(c, "#") {
			out = append(out, c)
		}
	}
	return out
}

// parseArea parses "(x1,y1)-(x2,y2)".
func parseArea(s string) (geo.Rect, error) {
	s = strings.ReplaceAll(s, " ", "")
	parts := strings.Split(s, ")-(")
	if len(parts) != 2 {
		return geo.Rect{}, fmt.Errorf("want (x1,y1)-(x2,y2), got %q", s)
	}
	p1, err := parsePoint(strings.TrimPrefix(parts[0], "("))
	if err != nil {
		return geo.Rect{}, err
	}
	p2, err := parsePoint(strings.TrimSuffix(parts[1], ")"))
	if err != nil {
		return geo.Rect{}, err
	}
	r := geo.NewRect(p1, p2)
	if r.Area() <= 0 {
		return geo.Rect{}, fmt.Errorf("degenerate area %v", r)
	}
	return r, nil
}

func parsePoint(s string) (geo.Point, error) {
	xy := strings.Split(s, ",")
	if len(xy) != 2 {
		return geo.Point{}, fmt.Errorf("want x,y, got %q", s)
	}
	x, err := strconv.ParseFloat(xy[0], 64)
	if err != nil {
		return geo.Point{}, err
	}
	y, err := strconv.ParseFloat(xy[1], 64)
	if err != nil {
		return geo.Point{}, err
	}
	return geo.Point{X: x, Y: y}, nil
}

// parseCover parses "70%" or "70% x2" (k-coverage).
func parseCover(g *compose.Goal, s string) error {
	fields := strings.Fields(s)
	if len(fields) == 0 {
		return fmt.Errorf("want percentage")
	}
	frac, err := parsePercent(fields[0])
	if err != nil {
		return err
	}
	g.CoverageFrac = frac
	if len(fields) > 1 {
		k := strings.TrimPrefix(strings.ToLower(fields[1]), "x")
		red, err := strconv.Atoi(k)
		if err != nil {
			return fmt.Errorf("redundancy %q: %v", fields[1], err)
		}
		g.Redundancy = red
	}
	return nil
}

func parseModalities(s string) (asset.Modality, error) {
	var m asset.Modality
	for _, tok := range strings.Split(strings.ToLower(strings.TrimSpace(s)), "+") {
		bit, ok := modalityNames[strings.TrimSpace(tok)]
		if !ok {
			return 0, fmt.Errorf("unknown modality %q", tok)
		}
		m |= bit
	}
	return m, nil
}

func parseCommand(m *core.Mission, s string) error {
	fields := strings.Fields(strings.ToLower(s))
	if len(fields) == 0 {
		return fmt.Errorf("want intent|hierarchy")
	}
	switch fields[0] {
	case "intent":
		m.Command = core.CommandIntent
	case "hierarchy":
		m.Command = core.CommandHierarchy
		if len(fields) == 3 && fields[1] == "levels" {
			lv, err := strconv.Atoi(fields[2])
			if err != nil {
				return err
			}
			m.HierarchyLevels = lv
		}
	default:
		return fmt.Errorf("unknown command model %q", fields[0])
	}
	return nil
}

// parseRate parses "12/min" or a bare number (per minute).
func parseRate(s string) (float64, error) {
	s = strings.TrimSuffix(strings.TrimSpace(s), "/min")
	return parseFloat(s)
}

// stripCmp removes a leading comparison operator (<, <=, >, >=, =).
func stripCmp(s string) string {
	s = strings.TrimSpace(s)
	for _, op := range []string{"<=", ">=", "<", ">", "="} {
		if strings.HasPrefix(s, op) {
			return strings.TrimSpace(s[len(op):])
		}
	}
	return s
}

func parsePercent(s string) (float64, error) {
	s = strings.TrimSpace(s)
	if strings.HasSuffix(s, "%") {
		v, err := strconv.ParseFloat(strings.TrimSuffix(s, "%"), 64)
		if err != nil {
			return 0, err
		}
		return v / 100, nil
	}
	return strconv.ParseFloat(s, 64)
}

func parseFloat(s string) (float64, error) {
	return strconv.ParseFloat(strings.TrimSpace(s), 64)
}

func parseDuration(s string) (time.Duration, error) {
	return time.ParseDuration(strings.TrimSpace(s))
}
