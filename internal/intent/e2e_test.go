package intent

import (
	"testing"
	"time"

	"iobt/internal/core"
	"iobt/internal/geo"
)

// TestSpecToMissionEndToEnd parses a spec, synthesizes, and runs the
// mission — the full goals-to-means pipeline from commander text to
// executed battlefield service.
func TestSpecToMissionEndToEnd(t *testing.T) {
	m, err := Parse(`
mission "e2e"
area (300,300)-(1200,1200)
cover 45%
command intent
rate 30/min
deadline 30s
`)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	w := core.NewWorld(core.WorldConfig{
		Seed:    41,
		Terrain: geo.NewOpenTerrain(1500, 1500),
		Assets:  400,
	})
	defer w.Stop()
	r := core.NewRuntime(w, m)
	if err := r.Synthesize(); err != nil {
		t.Fatalf("synthesize from DSL goal: %v", err)
	}
	if err := r.Start(); err != nil {
		t.Fatal(err)
	}
	if err := w.Run(2 * time.Minute); err != nil {
		t.Fatal(err)
	}
	r.Stop()
	if r.Metrics.Incidents.Value() < 50 {
		t.Errorf("incidents = %d, want ~60 (rate clause applied)", r.Metrics.Incidents.Value())
	}
	if r.Metrics.SuccessRate() == 0 {
		t.Error("mission from DSL produced no successes")
	}
}
