package sim

import (
	"hash/fnv"
	"math"
	"math/rand"
)

// RNG is a seeded, reproducible random stream. It wraps math/rand.Rand
// (never the global source) and adds the distributions the simulator
// needs. Streams derived with Derive are statistically independent and
// stable across runs for the same (seed, name) pair.
type RNG struct {
	r    *rand.Rand
	seed int64
}

// NewRNG returns a stream seeded with seed.
func NewRNG(seed int64) *RNG {
	return &RNG{r: rand.New(rand.NewSource(seed)), seed: seed}
}

// Derive returns a child stream keyed by name. The child's sequence does
// not depend on how much of the parent has been consumed.
func (g *RNG) Derive(name string) *RNG {
	h := fnv.New64a()
	_, _ = h.Write([]byte(name))
	child := g.seed ^ int64(h.Sum64())
	// Avoid the degenerate all-zero state.
	if child == 0 {
		child = int64(h.Sum64()) | 1
	}
	return NewRNG(child)
}

// Seed returns the seed this stream was created with.
func (g *RNG) Seed() int64 { return g.seed }

// Float64 returns a uniform value in [0,1).
func (g *RNG) Float64() float64 { return g.r.Float64() }

// Intn returns a uniform int in [0,n). n must be positive.
func (g *RNG) Intn(n int) int { return g.r.Intn(n) }

// Int63 returns a non-negative uniform int64.
func (g *RNG) Int63() int64 { return g.r.Int63() }

// Uniform returns a uniform value in [lo,hi).
func (g *RNG) Uniform(lo, hi float64) float64 {
	return lo + (hi-lo)*g.r.Float64()
}

// Norm returns a normal sample with the given mean and standard deviation.
func (g *RNG) Norm(mean, stddev float64) float64 {
	return mean + stddev*g.r.NormFloat64()
}

// Exp returns an exponential sample with the given mean (not rate). A
// non-positive mean returns 0.
func (g *RNG) Exp(mean float64) float64 {
	if mean <= 0 {
		return 0
	}
	return g.r.ExpFloat64() * mean
}

// Bool returns true with probability p.
func (g *RNG) Bool(p float64) bool {
	if p <= 0 {
		return false
	}
	if p >= 1 {
		return true
	}
	return g.r.Float64() < p
}

// Perm returns a random permutation of [0,n).
func (g *RNG) Perm(n int) []int { return g.r.Perm(n) }

// Shuffle randomizes the order of n elements using swap.
func (g *RNG) Shuffle(n int, swap func(i, j int)) { g.r.Shuffle(n, swap) }

// Pick returns a uniformly random index into a slice of length n, or -1
// if n <= 0.
func (g *RNG) Pick(n int) int {
	if n <= 0 {
		return -1
	}
	return g.r.Intn(n)
}

// Beta returns a sample from the Beta(a,b) distribution using Jöhnk's
// gamma-ratio construction. Both parameters must be positive; invalid
// parameters yield 0.5.
func (g *RNG) Beta(a, b float64) float64 {
	if a <= 0 || b <= 0 {
		return 0.5
	}
	x := g.Gamma(a)
	y := g.Gamma(b)
	if x+y == 0 {
		return 0.5
	}
	return x / (x + y)
}

// Gamma returns a sample from the Gamma(shape, 1) distribution using the
// Marsaglia–Tsang method. A non-positive shape yields 0.
func (g *RNG) Gamma(shape float64) float64 {
	if shape <= 0 {
		return 0
	}
	if shape < 1 {
		// Boost: Gamma(a) = Gamma(a+1) * U^(1/a).
		u := g.r.Float64()
		for u == 0 {
			u = g.r.Float64()
		}
		return g.Gamma(shape+1) * math.Pow(u, 1/shape)
	}
	d := shape - 1.0/3.0
	c := 1.0 / math.Sqrt(9*d)
	for {
		x := g.r.NormFloat64()
		v := 1 + c*x
		if v <= 0 {
			continue
		}
		v = v * v * v
		u := g.r.Float64()
		if u < 1-0.0331*x*x*x*x {
			return d * v
		}
		if u > 0 && math.Log(u) < 0.5*x*x+d*(1-v+math.Log(v)) {
			return d * v
		}
	}
}

// Poisson returns a Poisson sample with the given mean using inversion
// for small means and normal approximation above 500 (adequate for
// workload generation). A non-positive mean returns 0.
func (g *RNG) Poisson(mean float64) int {
	if mean <= 0 {
		return 0
	}
	if mean > 500 {
		v := g.Norm(mean, math.Sqrt(mean))
		if v < 0 {
			return 0
		}
		return int(v + 0.5)
	}
	l := math.Exp(-mean)
	k := 0
	p := 1.0
	for {
		p *= g.r.Float64()
		if p <= l {
			return k
		}
		k++
	}
}

// Zipf returns samples in [0,n) following a Zipf distribution with
// exponent s >= 1 via simple inverse-CDF over precomputed weights. For
// repeated use prefer NewZipf.
func (g *RNG) Zipf(n int, s float64) int {
	return NewZipf(g, n, s).Next()
}

// Zipfian draws Zipf-distributed indices.
type Zipfian struct {
	rng *RNG
	cdf []float64
}

// NewZipf precomputes a Zipf CDF over [0,n) with exponent s.
func NewZipf(rng *RNG, n int, s float64) *Zipfian {
	if n <= 0 {
		n = 1
	}
	if s < 0 {
		s = 0
	}
	cdf := make([]float64, n)
	sum := 0.0
	for i := 0; i < n; i++ {
		sum += 1 / math.Pow(float64(i+1), s)
		cdf[i] = sum
	}
	for i := range cdf {
		cdf[i] /= sum
	}
	return &Zipfian{rng: rng, cdf: cdf}
}

// Next draws the next index.
func (z *Zipfian) Next() int {
	u := z.rng.Float64()
	lo, hi := 0, len(z.cdf)-1
	for lo < hi {
		mid := (lo + hi) / 2
		if z.cdf[mid] < u {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return lo
}
