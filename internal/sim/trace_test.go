package sim

import (
	"strings"
	"testing"
	"time"
)

func TestTracerRecordsInOrder(t *testing.T) {
	e := NewEngine(1)
	tr := NewTracer(10)
	e.SetTracer(tr)
	e.Schedule(2*time.Second, "b", func() {})
	e.Schedule(1*time.Second, "a", func() {})
	_ = e.Run(0)
	got := tr.Entries()
	if len(got) != 2 || got[0].Label != "a" || got[1].Label != "b" {
		t.Fatalf("entries = %v", got)
	}
	if got[0].At != time.Second {
		t.Errorf("At = %v", got[0].At)
	}
}

func TestTracerRingWraps(t *testing.T) {
	e := NewEngine(1)
	tr := NewTracer(3)
	e.SetTracer(tr)
	for i := 0; i < 5; i++ {
		label := string(rune('a' + i))
		e.Schedule(time.Duration(i+1)*time.Second, label, func() {})
	}
	_ = e.Run(0)
	got := tr.Entries()
	if tr.Len() != 3 || len(got) != 3 {
		t.Fatalf("len = %d", tr.Len())
	}
	if got[0].Label != "c" || got[2].Label != "e" {
		t.Errorf("ring contents = %v", got)
	}
}

func TestTracerFilter(t *testing.T) {
	e := NewEngine(1)
	tr := NewTracer(10)
	tr.Filter = "mesh"
	e.SetTracer(tr)
	e.Schedule(time.Second, "mesh.hop", func() {})
	e.Schedule(2*time.Second, "churn", func() {})
	_ = e.Run(0)
	if tr.Len() != 1 || tr.Entries()[0].Label != "mesh.hop" {
		t.Errorf("filtered trace = %v", tr.Entries())
	}
}

func TestTracerString(t *testing.T) {
	e := NewEngine(1)
	tr := NewTracer(0) // defaults
	e.SetTracer(tr)
	e.Schedule(time.Second, "hello", func() {})
	_ = e.Run(0)
	if !strings.Contains(tr.String(), "hello") {
		t.Error("String missing label")
	}
	e.SetTracer(nil) // disable
	e.Schedule(time.Second, "quiet", func() {})
	_ = e.Run(0)
	if strings.Contains(tr.String(), "quiet") {
		t.Error("tracer recorded after removal")
	}
}
