package sim

// Scheduling-path micro-benchmarks: the per-event cost of the
// sequential and sharded engines. These are the numbers the hot-path
// campaign (ROADMAP item 3) gates on — allocs/op on the steady-state
// scheduling path must be zero, and the benchtab `-bench` table and CI
// bench-gate run the same loops through testing.Benchmark.

import (
	"testing"
	"time"
)

// BenchmarkEngineEvent measures one steady-state Schedule+Step cycle:
// a self-rescheduling event, so every Step pops one event and pushes
// its successor. The closure is created once outside the loop; the
// per-op cost is purely the engine's own bookkeeping.
func BenchmarkEngineEvent(b *testing.B) {
	eng := NewEngine(1)
	var tick func()
	tick = func() { eng.Schedule(time.Millisecond, "tick", tick) }
	eng.Schedule(time.Millisecond, "tick", tick)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		eng.Step()
	}
}

// BenchmarkEngineScheduleCancel exercises the Schedule+Cancel path:
// handles must stay valid (and refuse to fire) without holding the
// event alive.
func BenchmarkEngineScheduleCancel(b *testing.B) {
	eng := NewEngine(1)
	fn := func() {}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		h := eng.Schedule(time.Millisecond, "x", fn)
		h.Cancel()
		eng.Step()
	}
}

const benchActors = 64

// shardedTickBench builds a Sharded engine with benchActors
// self-rescheduling actors (one local event per actor per virtual
// millisecond) and runs ~b.N events, so ns/op and allocs/op read as
// per-event costs with barrier overhead amortized across the window.
func shardedTickBench(b *testing.B, shards int) {
	b.Helper()
	s := NewSharded(1, ShardedConfig{Shards: shards, Lookahead: time.Millisecond})
	var tick func(c *ShardCtx)
	tick = func(c *ShardCtx) { c.Schedule(time.Millisecond, "tick", tick) }
	for i := 0; i < benchActors; i++ {
		s.AddActor(ActorID(i), i%shards)
		s.ScheduleActor(ActorID(i), time.Millisecond, "tick", tick)
	}
	horizon := time.Duration((b.N+benchActors-1)/benchActors) * time.Millisecond
	b.ReportAllocs()
	b.ResetTimer()
	if err := s.Run(horizon); err != nil {
		b.Fatal(err)
	}
	b.StopTimer()
	if s.Processed() == 0 {
		b.Fatal("no events processed")
	}
}

func BenchmarkShardedLocal1(b *testing.B) { shardedTickBench(b, 1) }
func BenchmarkShardedLocal2(b *testing.B) { shardedTickBench(b, 2) }
func BenchmarkShardedLocal4(b *testing.B) { shardedTickBench(b, 4) }
func BenchmarkShardedLocal8(b *testing.B) { shardedTickBench(b, 8) }

// shardedSendBench is the cross-actor counterpart: every actor relays
// a delivery to its ring successor, so each event goes through Send,
// the destination mailbox, and the barrier drain — the full
// cross-shard path.
func shardedSendBench(b *testing.B, shards int) {
	b.Helper()
	s := NewSharded(1, ShardedConfig{Shards: shards, Lookahead: time.Millisecond})
	var relay func(c *ShardCtx)
	relay = func(c *ShardCtx) {
		//iobt:allow lookaheadclamp the engine above is configured with Lookahead: time.Millisecond, so a 1ms Send is exactly at the floor, not clamped
		c.Send((c.Self()+1)%benchActors, time.Millisecond, "msg", relay)
	}
	for i := 0; i < benchActors; i++ {
		s.AddActor(ActorID(i), i%shards)
	}
	for i := 0; i < benchActors; i++ {
		s.ScheduleActor(ActorID(i), time.Millisecond, "seed", relay)
	}
	horizon := time.Duration((b.N+benchActors-1)/benchActors) * time.Millisecond
	b.ReportAllocs()
	b.ResetTimer()
	if err := s.Run(horizon); err != nil {
		b.Fatal(err)
	}
	b.StopTimer()
	if s.Processed() == 0 {
		b.Fatal("no events processed")
	}
}

func BenchmarkShardedSend1(b *testing.B) { shardedSendBench(b, 1) }
func BenchmarkShardedSend2(b *testing.B) { shardedSendBench(b, 2) }
func BenchmarkShardedSend4(b *testing.B) { shardedSendBench(b, 4) }
func BenchmarkShardedSend8(b *testing.B) { shardedSendBench(b, 8) }
