package sim

import (
	"fmt"
	"strings"
	"time"
)

// TraceEntry is one recorded simulation event.
type TraceEntry struct {
	At    time.Duration
	Label string
}

// Tracer records executed events into a bounded ring buffer so a run
// can be audited or a failure reproduced ("what fired in the last
// minute before the assertion broke"). Install with Engine.SetTracer;
// tracing is off by default and costs nothing when disabled.
type Tracer struct {
	buf  []TraceEntry
	next int
	full bool
	// Filter, when set, records only events whose label contains the
	// substring.
	Filter string
}

// NewTracer returns a tracer keeping the last n events (n<=0 defaults
// to 1024).
func NewTracer(n int) *Tracer {
	if n <= 0 {
		n = 1024
	}
	return &Tracer{buf: make([]TraceEntry, n)}
}

func (t *Tracer) record(at time.Duration, label string) {
	if t.Filter != "" && !strings.Contains(label, t.Filter) {
		return
	}
	t.buf[t.next] = TraceEntry{At: at, Label: label}
	t.next++
	if t.next == len(t.buf) {
		t.next = 0
		t.full = true
	}
}

// Entries returns the recorded events, oldest first.
func (t *Tracer) Entries() []TraceEntry {
	if !t.full {
		out := make([]TraceEntry, t.next)
		copy(out, t.buf[:t.next])
		return out
	}
	out := make([]TraceEntry, 0, len(t.buf))
	out = append(out, t.buf[t.next:]...)
	out = append(out, t.buf[:t.next]...)
	return out
}

// Len returns the number of recorded events.
func (t *Tracer) Len() int {
	if t.full {
		return len(t.buf)
	}
	return t.next
}

// String renders the trace one event per line.
func (t *Tracer) String() string {
	var b strings.Builder
	for _, e := range t.Entries() {
		fmt.Fprintf(&b, "%12s  %s\n", e.At, e.Label)
	}
	return b.String()
}

// SetTracer installs (or with nil removes) an event tracer.
func (e *Engine) SetTracer(t *Tracer) { e.tracer = t }
