package sim

import (
	"context"
	"errors"
	"testing"
	"testing/quick"
	"time"
)

func TestScheduleOrdering(t *testing.T) {
	e := NewEngine(1)
	var got []int
	e.Schedule(3*time.Second, "c", func() { got = append(got, 3) })
	e.Schedule(1*time.Second, "a", func() { got = append(got, 1) })
	e.Schedule(2*time.Second, "b", func() { got = append(got, 2) })
	if err := e.Run(0); err != nil {
		t.Fatalf("run: %v", err)
	}
	want := []int{1, 2, 3}
	for i, v := range want {
		if got[i] != v {
			t.Fatalf("order = %v, want %v", got, want)
		}
	}
	if e.Now() != 3*time.Second {
		t.Errorf("Now() = %v, want 3s", e.Now())
	}
}

func TestFIFOAmongEqualTimes(t *testing.T) {
	e := NewEngine(1)
	var got []int
	for i := 0; i < 10; i++ {
		i := i
		e.Schedule(time.Second, "x", func() { got = append(got, i) })
	}
	if err := e.Run(0); err != nil {
		t.Fatalf("run: %v", err)
	}
	for i := 0; i < 10; i++ {
		if got[i] != i {
			t.Fatalf("equal-time events not FIFO: %v", got)
		}
	}
}

func TestNegativeDelayClamped(t *testing.T) {
	e := NewEngine(1)
	fired := false
	e.Schedule(-5*time.Second, "neg", func() { fired = true })
	if err := e.Run(0); err != nil {
		t.Fatalf("run: %v", err)
	}
	if !fired {
		t.Error("negative-delay event did not fire")
	}
	if e.Now() != 0 {
		t.Errorf("clock moved backwards: %v", e.Now())
	}
}

func TestCancel(t *testing.T) {
	e := NewEngine(1)
	fired := false
	h := e.Schedule(time.Second, "x", func() { fired = true })
	if !h.Pending() {
		t.Fatal("handle should be pending")
	}
	if !h.Cancel() {
		t.Fatal("cancel should succeed")
	}
	if h.Cancel() {
		t.Fatal("second cancel should fail")
	}
	if err := e.Run(0); err != nil {
		t.Fatalf("run: %v", err)
	}
	if fired {
		t.Error("canceled event fired")
	}
}

func TestHorizonStopsClock(t *testing.T) {
	e := NewEngine(1)
	fired := false
	e.Schedule(10*time.Second, "late", func() { fired = true })
	if err := e.Run(5 * time.Second); err != nil {
		t.Fatalf("run: %v", err)
	}
	if fired {
		t.Error("event beyond horizon fired")
	}
	if e.Now() != 5*time.Second {
		t.Errorf("Now() = %v, want 5s", e.Now())
	}
	// Resume: the event is still there.
	if err := e.Run(10 * time.Second); err != nil {
		t.Fatalf("run: %v", err)
	}
	if !fired {
		t.Error("event did not fire after resuming")
	}
}

func TestStop(t *testing.T) {
	e := NewEngine(1)
	count := 0
	e.Every(time.Second, "tick", func() {
		count++
		if count == 3 {
			e.Stop()
		}
	})
	if err := e.Run(0); err != ErrStopped {
		t.Fatalf("run err = %v, want ErrStopped", err)
	}
	if count != 3 {
		t.Errorf("count = %d, want 3", count)
	}
}

func TestTicker(t *testing.T) {
	e := NewEngine(1)
	count := 0
	tk := e.Every(time.Second, "tick", func() { count++ })
	e.Schedule(5500*time.Millisecond, "stop", func() { tk.Stop() })
	if err := e.Run(20 * time.Second); err != nil {
		t.Fatalf("run: %v", err)
	}
	if count != 5 {
		t.Errorf("ticks = %d, want 5", count)
	}
}

func TestRunUntil(t *testing.T) {
	e := NewEngine(1)
	n := 0
	e.Every(time.Second, "tick", func() { n++ })
	ok := e.RunUntil(func() bool { return n >= 4 }, 100)
	if !ok {
		t.Fatal("predicate not reached")
	}
	if n != 4 {
		t.Errorf("n = %d, want 4", n)
	}
}

func TestNestedScheduling(t *testing.T) {
	e := NewEngine(1)
	depth := 0
	var recurse func()
	recurse = func() {
		depth++
		if depth < 5 {
			e.Schedule(time.Second, "r", recurse)
		}
	}
	e.Schedule(time.Second, "r", recurse)
	if err := e.Run(0); err != nil {
		t.Fatalf("run: %v", err)
	}
	if depth != 5 {
		t.Errorf("depth = %d, want 5", depth)
	}
	if e.Now() != 5*time.Second {
		t.Errorf("Now() = %v, want 5s", e.Now())
	}
}

// TestClockMonotonic is a property test: however events are scheduled,
// the clock observed inside each fired event never decreases.
func TestClockMonotonic(t *testing.T) {
	prop := func(delays []int16) bool {
		e := NewEngine(42)
		last := time.Duration(-1)
		ok := true
		for _, d := range delays {
			delay := time.Duration(d) * time.Millisecond
			e.Schedule(delay, "p", func() {
				if e.Now() < last {
					ok = false
				}
				last = e.Now()
			})
		}
		if err := e.Run(0); err != nil {
			return false
		}
		return ok
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestDeterminism(t *testing.T) {
	trace := func(seed int64) []float64 {
		e := NewEngine(seed)
		rng := e.Stream("test")
		var out []float64
		e.Every(time.Second, "tick", func() { out = append(out, rng.Float64()) })
		e.Schedule(10*time.Second+time.Millisecond, "stop", func() { e.Stop() })
		_ = e.Run(0)
		return out
	}
	a, b := trace(7), trace(7)
	if len(a) != len(b) {
		t.Fatalf("trace lengths differ: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("traces diverge at %d: %v vs %v", i, a[i], b[i])
		}
	}
	c := trace(8)
	same := len(a) == len(c)
	if same {
		for i := range a {
			if a[i] != c[i] {
				same = false
				break
			}
		}
	}
	if same {
		t.Error("different seeds produced identical traces")
	}
}

func TestEngineAccessors(t *testing.T) {
	e := NewEngine(5)
	if e.Processed() != 0 || e.Pending() != 0 {
		t.Error("fresh engine should have no events")
	}
	e.Schedule(time.Second, "x", func() {})
	if e.Pending() != 1 {
		t.Errorf("Pending = %d", e.Pending())
	}
	if e.RNG() == nil {
		t.Fatal("nil master RNG")
	}
	_ = e.Run(0)
	if e.Processed() != 1 {
		t.Errorf("Processed = %d", e.Processed())
	}
}

func TestScheduleAt(t *testing.T) {
	e := NewEngine(6)
	var at time.Duration
	e.ScheduleAt(10*time.Second, "abs", func() { at = e.Now() })
	_ = e.Run(0)
	if at != 10*time.Second {
		t.Errorf("fired at %v", at)
	}
	// Past times clamp to now.
	e.Schedule(time.Second, "later", func() {
		e.ScheduleAt(0, "past", func() {
			if e.Now() < time.Second {
				t.Error("past-scheduled event ran before now")
			}
		})
	})
	_ = e.Run(0)
}

func TestRunUntilExhaustsQueue(t *testing.T) {
	e := NewEngine(7)
	e.Schedule(time.Second, "only", func() {})
	if ok := e.RunUntil(func() bool { return false }, 100); ok {
		t.Error("predicate never true but RunUntil reported success")
	}
}

func TestRunContextCancel(t *testing.T) {
	e := NewEngine(8)
	ctx, cancel := context.WithCancelCause(context.Background())
	cause := errors.New("mission stalled")
	fired := 0
	var tick *Ticker
	tick = e.Every(time.Second, "ctx.tick", func() {
		fired++
		if fired == 3 {
			cancel(cause)
		}
	})
	defer tick.Stop()
	err := e.RunContext(ctx, time.Minute)
	if !errors.Is(err, cause) {
		t.Fatalf("RunContext error = %v, want cause %v", err, cause)
	}
	// The loop observes ctx between events: the cancelling event itself
	// completes, nothing after it runs.
	if fired != 3 {
		t.Errorf("events after cancellation: fired = %d, want 3", fired)
	}
	if e.Now() != 3*time.Second {
		t.Errorf("clock advanced to %v after cancellation, want 3s", e.Now())
	}
}

func TestRunContextPreCancelled(t *testing.T) {
	e := NewEngine(9)
	e.Schedule(time.Second, "never", func() { t.Error("event ran under a cancelled context") })
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if err := e.RunContext(ctx, time.Minute); err == nil {
		t.Fatal("RunContext under a cancelled context returned nil")
	}
	if e.Now() != 0 {
		t.Errorf("clock advanced to %v", e.Now())
	}
}

func TestRunContextBackgroundMatchesRun(t *testing.T) {
	trace := func(run func(e *Engine) error) (uint64, error) {
		e := NewEngine(10)
		var tk *Ticker
		tk = e.Every(time.Second, "bg.tick", func() {})
		defer tk.Stop()
		err := run(e)
		return e.Processed(), err
	}
	n1, err1 := trace(func(e *Engine) error { return e.Run(10 * time.Second) })
	n2, err2 := trace(func(e *Engine) error { return e.RunContext(context.Background(), 10*time.Second) })
	if n1 != n2 || (err1 == nil) != (err2 == nil) {
		t.Errorf("Run vs RunContext(background): processed %d/%d, errs %v/%v", n1, n2, err1, err2)
	}
}
