package sim

import (
	"context"
	"encoding/binary"
	"errors"
	"fmt"
	"hash/fnv"
	"runtime"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

// toyModel is a self-contained actor workload used to exercise the
// sharded engine: a population of actors that tick on random local
// timers, mix randomness into private state, exchange payloads via
// Send, and (optionally) migrate between shards. Every mutation touches
// only the executing actor's slot, and all randomness comes from
// per-actor streams, so the final state must be byte-identical for any
// shard count.
type toyModel struct {
	s    *Sharded
	rngs []*RNG

	// Per-actor slots: written only by the owning actor's events.
	state     []uint64
	ticks     []uint64
	sent      []uint64
	delivered []uint64
}

type toyConfig struct {
	shards  int
	actors  int
	ticks   int
	migrate bool
	// control, when non-nil, runs as an extra actor-0 event at controlAt.
	control   func(*ShardCtx)
	controlAt time.Duration
}

func newToy(seed int64, cfg toyConfig) *toyModel {
	s := NewSharded(seed, ShardedConfig{Shards: cfg.shards, Lookahead: 50 * time.Millisecond})
	m := &toyModel{
		s:         s,
		rngs:      make([]*RNG, cfg.actors),
		state:     make([]uint64, cfg.actors),
		ticks:     make([]uint64, cfg.actors),
		sent:      make([]uint64, cfg.actors),
		delivered: make([]uint64, cfg.actors),
	}
	for i := 0; i < cfg.actors; i++ {
		s.AddActor(ActorID(i), i%cfg.shards)
		m.rngs[i] = s.Stream(fmt.Sprintf("actor/%d", i))
	}
	if cfg.control != nil {
		s.ScheduleActor(0, cfg.controlAt, "control", cfg.control)
	}
	for i := 0; i < cfg.actors; i++ {
		delay := time.Duration(m.rngs[i].Intn(40)) * time.Millisecond
		s.ScheduleActor(ActorID(i), delay, "tick", m.tick(i, cfg.ticks, cfg.migrate))
	}
	return m
}

func (m *toyModel) tick(i, remaining int, migrate bool) func(*ShardCtx) {
	return func(c *ShardCtx) {
		r := m.rngs[i]
		m.ticks[i]++
		m.state[i] = m.state[i]*31 + uint64(r.Int63()) + uint64(c.Now())
		if r.Bool(0.4) {
			dst := ActorID(r.Intn(len(m.state)))
			payload := uint64(r.Int63())
			sentAt := c.Now()
			m.sent[i]++
			c.Send(dst, time.Duration(r.Intn(80))*time.Millisecond, "pkt", func(rc *ShardCtx) {
				j := rc.Self()
				if lat := rc.Now() - sentAt; lat < rc.Engine().Lookahead() {
					panic(fmt.Sprintf("delivery latency %v below lookahead", lat))
				}
				m.state[j] = m.state[j]*33 ^ (payload + uint64(rc.Now()))
				m.delivered[j]++
			})
		}
		if migrate && r.Bool(0.3) {
			// The draw happens unconditionally relative to the actor's own
			// schedule; only the target depends on the shard count, and the
			// target is a pure performance decision.
			c.Migrate(r.Intn(64) % c.Engine().Shards())
		}
		if remaining > 1 {
			c.Schedule(time.Duration(5+r.Intn(60))*time.Millisecond, "tick", m.tick(i, remaining-1, migrate))
		}
	}
}

// digest folds all per-actor model state in actor-ID order.
func (m *toyModel) digest() uint64 {
	h := fnv.New64a()
	var buf [8]byte
	w := func(v uint64) {
		binary.BigEndian.PutUint64(buf[:], v)
		_, _ = h.Write(buf[:])
	}
	for i := range m.state {
		w(m.state[i])
		w(m.ticks[i])
		w(m.sent[i])
		w(m.delivered[i])
	}
	return h.Sum64()
}

func (m *toyModel) totals() (ticks, sent, delivered uint64) {
	for i := range m.state {
		ticks += m.ticks[i]
		sent += m.sent[i]
		delivered += m.delivered[i]
	}
	return
}

// TestShardedDeterminismAcrossShardCounts is the core contract: the
// same seed produces an identical final state for every shard count,
// with and without mobility-driven migration, and rerunning a
// configuration reproduces itself exactly.
func TestShardedDeterminismAcrossShardCounts(t *testing.T) {
	for _, migrate := range []bool{false, true} {
		name := "static"
		if migrate {
			name = "migrating"
		}
		t.Run(name, func(t *testing.T) {
			run := func(shards int) (uint64, uint64) {
				m := newToy(4242, toyConfig{shards: shards, actors: 24, ticks: 12, migrate: migrate})
				if err := m.s.Run(0); err != nil {
					t.Fatalf("shards=%d: %v", shards, err)
				}
				return m.digest(), m.s.Processed()
			}
			refDigest, refProcessed := run(1)
			for _, shards := range []int{2, 3, 4, 8} {
				d, p := run(shards)
				if d != refDigest {
					t.Errorf("shards=%d digest %016x, 1-shard reference %016x", shards, d, refDigest)
				}
				if p != refProcessed {
					t.Errorf("shards=%d processed %d, 1-shard reference %d", shards, p, refProcessed)
				}
			}
			again, _ := run(4)
			if again != refDigest {
				t.Errorf("4-shard rerun digest %016x, want %016x", again, refDigest)
			}
		})
	}
}

// TestShardedHorizonBoundaryDelivery pins the horizon edge case: a
// delivery landing exactly at the horizon must execute (or not)
// identically whether sender and receiver share a shard. All sends
// route through mailboxes precisely so this cannot diverge.
// TestShardedClampedSends pins the Send clamp accounting: every delay
// below Lookahead increments the counter exactly once, delays at or
// above the floor never do, and the total is shard-count invariant
// (clamping is a pure function of the model's stated delay).
func TestShardedClampedSends(t *testing.T) {
	s := NewSharded(7, ShardedConfig{Shards: 1, Lookahead: 100 * time.Millisecond})
	s.AddActor(0, 0)
	s.AddActor(1, 0)
	s.ScheduleActor(0, 0, "emit", func(c *ShardCtx) {
		//iobt:allow lookaheadclamp this test exists to exercise the runtime clamp; the sub-floor delay is the point
		c.Send(1, 10*time.Millisecond, "below", func(*ShardCtx) {}) // clamped
		//iobt:allow lookaheadclamp this test exists to exercise the runtime clamp; the sub-floor delay is the point
		c.Send(1, 99*time.Millisecond, "edge", func(*ShardCtx) {})   // clamped
		c.Send(1, 100*time.Millisecond, "floor", func(*ShardCtx) {}) // not clamped
		c.Send(1, 250*time.Millisecond, "above", func(*ShardCtx) {}) // not clamped
	})
	if err := s.Run(time.Second); err != nil {
		t.Fatal(err)
	}
	if got := s.ClampedSends(); got != 2 {
		t.Errorf("ClampedSends = %d, want 2 (10ms and 99ms below the 100ms floor)", got)
	}

	// The toy model draws Send delays in [0, 80)ms against a 50ms
	// lookahead, so a healthy fraction clamps; the count must agree at
	// every shard count because the model's delays do.
	var want uint64
	for i, shards := range []int{1, 2, 4} {
		m := newToy(99, toyConfig{shards: shards, actors: 48, ticks: 12})
		if err := m.s.Run(time.Minute); err != nil {
			t.Fatal(err)
		}
		got := m.s.ClampedSends()
		if i == 0 {
			want = got
			if want == 0 {
				t.Fatal("toy model produced no clamped sends; the invariance check is vacuous")
			}
			continue
		}
		if got != want {
			t.Errorf("shards=%d: ClampedSends = %d, want %d (shard-count invariant)", shards, got, want)
		}
	}
}

func TestShardedHorizonBoundaryDelivery(t *testing.T) {
	const look = 100 * time.Millisecond
	run := func(shards int) (uint64, uint64) {
		s := NewSharded(7, ShardedConfig{Shards: shards, Lookahead: look})
		var got, processed uint64
		s.AddActor(0, 0)
		s.AddActor(1, shards-1)
		s.ScheduleActor(0, look, "emit", func(c *ShardCtx) {
			c.Send(1, look, "edge", func(rc *ShardCtx) {
				got = uint64(rc.Now())
			})
		})
		if err := s.Run(2 * look); err != nil {
			t.Fatalf("shards=%d: %v", shards, err)
		}
		processed = s.Processed()
		return got, processed
	}
	g1, p1 := run(1)
	g2, p2 := run(2)
	if g1 != g2 || p1 != p2 {
		t.Fatalf("horizon-boundary delivery diverged: 1-shard (%d, %d) vs 2-shard (%d, %d)", g1, p1, g2, p2)
	}
	if g1 != uint64(2*look) {
		t.Fatalf("delivery at horizon did not execute: got %d, want %d", g1, uint64(2*look))
	}
}

// TestShardedOrderingProbe asserts, via the execution probe, that no
// event ever executes out of timestamp order for its actor and that no
// event ever trails the conservative barrier clock — i.e. cross-shard
// boundaries never reorder observable execution.
func TestShardedOrderingProbe(t *testing.T) {
	m := newToy(99, toyConfig{shards: 4, actors: 24, ticks: 10, migrate: true})

	lastAt := make([]int64, 24) // per-actor, written only by the owning worker
	var mu sync.Mutex
	var violations []string
	m.s.SetProbe(func(shard int, actor ActorID, at time.Duration, label string) {
		if floor := m.s.Now(); at < floor {
			mu.Lock()
			violations = append(violations, fmt.Sprintf("%q on actor %d at %v trails barrier %v", label, actor, at, floor))
			mu.Unlock()
		}
		if prev := time.Duration(lastAt[actor]); at < prev {
			mu.Lock()
			violations = append(violations, fmt.Sprintf("%q on actor %d at %v after event at %v", label, actor, at, prev))
			mu.Unlock()
		}
		lastAt[actor] = int64(at)
	})
	if err := m.s.Run(0); err != nil {
		t.Fatal(err)
	}
	for _, v := range violations {
		t.Errorf("ordering violation: %s", v)
	}
	if m.s.Processed() == 0 {
		t.Fatal("probe test ran no events")
	}
}

// TestShardedMigrationConservation: under heavy random migration no
// scheduled event is dropped or duplicated — every tick runs exactly
// once, every send is delivered exactly once, and the queues drain.
func TestShardedMigrationConservation(t *testing.T) {
	const actors, ticksEach = 32, 14
	m := newToy(555, toyConfig{shards: 8, actors: actors, ticks: ticksEach, migrate: true})
	if err := m.s.Run(0); err != nil {
		t.Fatal(err)
	}
	ticks, sent, delivered := m.totals()
	if want := uint64(actors * ticksEach); ticks != want {
		t.Errorf("ticks executed %d, want exactly %d", ticks, want)
	}
	if sent != delivered {
		t.Errorf("sent %d != delivered %d: events dropped or duplicated in migration", sent, delivered)
	}
	if p := m.s.Pending(); p != 0 {
		t.Errorf("drained run reports %d pending events", p)
	}
	ref := newToy(555, toyConfig{shards: 1, actors: actors, ticks: ticksEach, migrate: true})
	if err := ref.s.Run(0); err != nil {
		t.Fatal(err)
	}
	if d, r := m.digest(), ref.digest(); d != r {
		t.Errorf("migrating 8-shard digest %016x, 1-shard reference %016x", d, r)
	}
}

// TestShardedStopResume: Stop from inside an event halts mid-window
// without losing or reordering anything — resuming the run converges to
// the same final state as an uninterrupted reference run.
func TestShardedStopResume(t *testing.T) {
	const at = 230 * time.Millisecond
	build := func(stop bool) *toyModel {
		control := func(c *ShardCtx) {}
		if stop {
			control = func(c *ShardCtx) { c.Engine().Stop() }
		}
		return newToy(31337, toyConfig{
			shards: 4, actors: 24, ticks: 12, migrate: true,
			control: control, controlAt: at,
		})
	}
	ref := build(false)
	if err := ref.s.Run(0); err != nil {
		t.Fatal(err)
	}

	m := build(true)
	if err := m.s.Run(0); !errors.Is(err, ErrStopped) {
		t.Fatalf("stopped run returned %v, want ErrStopped", err)
	}
	if m.s.Pending() == 0 {
		t.Fatal("stop test degenerate: nothing left to resume")
	}
	if err := m.s.Run(0); err != nil {
		t.Fatalf("resume: %v", err)
	}
	if d, r := m.digest(), ref.digest(); d != r {
		t.Errorf("stop+resume digest %016x, uninterrupted reference %016x", d, r)
	}
	if p, r := m.s.Processed(), ref.s.Processed(); p != r {
		t.Errorf("stop+resume processed %d, reference %d", p, r)
	}
}

// TestShardedCancelResume: context cancellation mid-window behaves like
// Stop — the run returns the cancellation cause, leaks no goroutines,
// and a resumed run converges to the uninterrupted result.
func TestShardedCancelResume(t *testing.T) {
	base := runtime.NumGoroutine()

	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	m := newToy(2026, toyConfig{
		shards: 4, actors: 24, ticks: 12, migrate: true,
		control: func(c *ShardCtx) { cancel() }, controlAt: 230 * time.Millisecond,
	})
	if err := m.s.RunContext(ctx, 0); !errors.Is(err, context.Canceled) {
		t.Fatalf("cancelled run returned %v, want context.Canceled", err)
	}
	waitNoLeak(t, base)

	if err := m.s.Run(0); err != nil {
		t.Fatalf("resume after cancel: %v", err)
	}
	ref := newToy(2026, toyConfig{
		shards: 4, actors: 24, ticks: 12, migrate: true,
		control: func(c *ShardCtx) {}, controlAt: 230 * time.Millisecond,
	})
	if err := ref.s.Run(0); err != nil {
		t.Fatal(err)
	}
	if d, r := m.digest(), ref.digest(); d != r {
		t.Errorf("cancel+resume digest %016x, reference %016x", d, r)
	}
}

// TestShardedPanicIsolation: a panic in one shard worker surfaces as a
// ShardPanicError naming the shard, the other workers finish their
// window, and no goroutine leaks or deadlocks.
func TestShardedPanicIsolation(t *testing.T) {
	base := runtime.NumGoroutine()

	m := newToy(808, toyConfig{
		shards: 4, actors: 24, ticks: 12,
		control:   func(c *ShardCtx) { panic("boom") },
		controlAt: 210 * time.Millisecond,
	})
	err := m.s.Run(0)
	var pe *ShardPanicError
	if !errors.As(err, &pe) {
		t.Fatalf("run returned %v, want *ShardPanicError", err)
	}
	if pe.Value != "boom" {
		t.Errorf("panic value %v, want boom", pe.Value)
	}
	if want := m.s.ActorShard(0); pe.Shard != want {
		t.Errorf("panic attributed to shard %d, actor 0 lives on %d", pe.Shard, want)
	}
	if len(pe.Stack) == 0 {
		t.Error("panic error carries no stack")
	}
	waitNoLeak(t, base)
}

// TestShardedStopDuringBarrier: Stop invoked while the coordinator sits
// at a barrier (inside the AtBarrier hook) halts cleanly, and the hook
// may inject events that a resumed run then executes.
func TestShardedStopDuringBarrier(t *testing.T) {
	m := newToy(6, toyConfig{shards: 2, actors: 8, ticks: 6})
	injected := false
	fired := false
	m.s.AtBarrier(func(now time.Duration) {
		if injected {
			return
		}
		injected = true
		m.s.ScheduleActor(3, m.s.Lookahead(), "injected", func(c *ShardCtx) { fired = true })
		m.s.Stop()
	})
	if err := m.s.Run(0); !errors.Is(err, ErrStopped) {
		t.Fatalf("run returned %v, want ErrStopped", err)
	}
	m.s.AtBarrier(nil)
	if err := m.s.Run(0); err != nil {
		t.Fatalf("resume: %v", err)
	}
	if !fired {
		t.Error("event injected at the barrier never executed")
	}
}

// TestShardedCountersConcurrentReads hammers Now/Processed/Pending from
// observer goroutines while the shard workers run — the -race
// regression for the mutex-free counter path.
func TestShardedCountersConcurrentReads(t *testing.T) {
	m := newToy(1717, toyConfig{shards: 4, actors: 24, ticks: 12, migrate: true})
	stop := make(chan struct{})
	var wg sync.WaitGroup
	var reads atomic.Uint64
	for i := 0; i < 3; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				_ = m.s.Processed()
				_ = m.s.Pending()
				_ = m.s.Now()
				reads.Add(1)
			}
		}()
	}
	err := m.s.Run(0)
	close(stop)
	wg.Wait()
	if err != nil {
		t.Fatal(err)
	}
	if reads.Load() == 0 {
		t.Fatal("observer goroutines never read the counters")
	}
	if m.s.Pending() != 0 {
		t.Errorf("drained run reports %d pending", m.s.Pending())
	}
}

// TestEngineCountersConcurrentReads is the same regression for the
// single-threaded Engine: Pending and Processed are documented safe
// from any goroutine while the loop runs.
func TestEngineCountersConcurrentReads(t *testing.T) {
	e := NewEngine(5)
	var tick func()
	n := 0
	tick = func() {
		n++
		if n < 5000 {
			e.Schedule(time.Millisecond, "tick", tick)
		}
	}
	e.Schedule(0, "tick", tick)

	stop := make(chan struct{})
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		for {
			select {
			case <-stop:
				return
			default:
			}
			_ = e.Processed()
			_ = e.Pending()
		}
	}()
	err := e.Run(0)
	close(stop)
	wg.Wait()
	if err != nil {
		t.Fatal(err)
	}
	if got := e.Processed(); got != 5000 {
		t.Fatalf("processed %d, want 5000", got)
	}
	if e.Pending() != 0 {
		t.Fatalf("pending %d after drain", e.Pending())
	}
}

// waitNoLeak polls until the goroutine count returns to (near) the
// baseline, failing the test if worker goroutines outlive their run.
func waitNoLeak(t *testing.T, base int) {
	t.Helper()
	deadline := time.Now().Add(3 * time.Second) //iobt:allow detrand test-only leak-check timeout
	for {
		if runtime.NumGoroutine() <= base {
			return
		}
		if time.Now().After(deadline) { //iobt:allow detrand test-only leak-check timeout
			t.Fatalf("goroutine leak: %d running, baseline %d", runtime.NumGoroutine(), base)
		}
		runtime.Gosched()
		time.Sleep(5 * time.Millisecond)
	}
}
