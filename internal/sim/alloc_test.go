package sim

// Allocation regression tests for the pooled scheduling paths: the
// steady-state per-event cost of both engines must be zero allocations
// (ROADMAP item 3). These pin what the CI bench-gate measures, and the
// handle-generation tests pin the safety property that makes pooling
// sound: a Handle outliving its event must never touch the recycled
// struct's next occupant.

import (
	"context"
	"testing"
	"time"
)

func TestEngineZeroAllocScheduling(t *testing.T) {
	eng := NewEngine(1)
	var tick func()
	tick = func() { eng.Schedule(time.Millisecond, "tick", tick) }
	for i := 0; i < 8; i++ {
		eng.Schedule(time.Millisecond, "tick", tick)
	}
	for i := 0; i < 100; i++ { // warm the pool and the heap capacity
		eng.Step()
	}
	allocs := testing.AllocsPerRun(200, func() { eng.Step() })
	if allocs != 0 {
		t.Fatalf("steady-state Schedule+Step allocated %v per event, want 0", allocs)
	}
}

func TestShardedZeroAllocScheduling(t *testing.T) {
	for _, shards := range []int{1, 2, 4, 8} {
		t.Run(string(rune('0'+shards)), func(t *testing.T) {
			const actors = 16
			s := NewSharded(1, ShardedConfig{Shards: shards, Lookahead: time.Millisecond})
			var tick, deliver func(c *ShardCtx)
			deliver = func(c *ShardCtx) {}
			tick = func(c *ShardCtx) {
				c.Schedule(time.Millisecond, "tick", tick)
				//iobt:allow lookaheadclamp the engine above is configured with Lookahead: time.Millisecond, so a 1ms Send is exactly at the floor, not clamped
				c.Send((c.Self()+1)%actors, time.Millisecond, "msg", deliver)
			}
			for i := 0; i < actors; i++ {
				s.AddActor(ActorID(i), i%shards)
				s.ScheduleActor(ActorID(i), time.Millisecond, "tick", tick)
			}
			// Warm the pools, heaps, and inbox ping-pong buffers.
			if err := s.Run(20 * time.Millisecond); err != nil {
				t.Fatal(err)
			}
			// Drive barrier-to-barrier windows inline (workers down, so
			// every lane executes on this goroutine): the measured loop is
			// exactly the scheduling path — pool alloc/free, heap push/pop,
			// mailbox staging and drain — at the full shard layout.
			ctx := context.Background()
			end := s.Now()
			allocs := testing.AllocsPerRun(100, func() {
				end += time.Millisecond
				s.runWindow(ctx, end, false)
				s.drainInboxes()
				s.applyMigrations()
				s.setNow(end)
			})
			if allocs != 0 {
				t.Fatalf("%d shards: steady-state window allocated %v, want 0", shards, allocs)
			}
			if s.Processed() == 0 {
				t.Fatal("no events processed")
			}
		})
	}
}

func TestHandleStaleAfterRecycle(t *testing.T) {
	eng := NewEngine(1)
	fired := 0
	h1 := eng.Schedule(time.Millisecond, "a", func() { fired += 1 })
	if !eng.Step() {
		t.Fatal("step")
	}
	// The pool hands the recycled struct straight back.
	h2 := eng.Schedule(time.Millisecond, "b", func() { fired += 10 })
	if h1.ev != h2.ev {
		t.Fatal("expected the recycled event struct to be reused")
	}
	if h1.Pending() {
		t.Error("stale handle reports pending")
	}
	if h1.Cancel() {
		t.Error("stale handle canceled the recycled event")
	}
	if !h2.Pending() {
		t.Error("fresh handle should be pending")
	}
	if !eng.Step() {
		t.Fatal("step")
	}
	if fired != 11 {
		t.Fatalf("fired = %d, want 11 (stale handle must not block the reused event)", fired)
	}
}

func TestHandleCancelRecycles(t *testing.T) {
	eng := NewEngine(1)
	h := eng.Schedule(time.Millisecond, "a", func() { t.Error("canceled event fired") })
	if !h.Cancel() {
		t.Fatal("cancel")
	}
	eng.Schedule(2*time.Millisecond, "b", func() {})
	if !eng.Step() { // pops the canceled event, recycles it, fires "b"
		t.Fatal("step")
	}
	if h.Cancel() || h.Pending() {
		t.Error("handle to a popped canceled event must be inert")
	}
	if eng.Pending() != 0 {
		t.Fatalf("pending = %d, want 0", eng.Pending())
	}
}
