package sim

// Sharded is the parallel counterpart of Engine: the simulated world is
// spatially partitioned into shards, each advancing its own event heap
// on a worker goroutine, synchronized by conservative time windows. The
// determinism contract is stronger than "same seed, same run": the same
// seed must produce byte-identical model state for ANY shard count, so
// sharding is purely a performance knob, never a semantic one.
//
// The protocol (DESIGN.md §12):
//
//   - Every event belongs to exactly one actor, and every actor is owned
//     by exactly one shard. An actor's state may only be touched by
//     events executing on that actor.
//   - Time advances in windows of width Lookahead. A shard may execute
//     an event at virtual time t only when every shard has finished the
//     window before t — enforced by a barrier between windows.
//   - Cross-actor interaction travels as a scheduled delivery (Send)
//     with delay >= Lookahead, so anything sent during window k arrives
//     in window k+1 or later and the barrier has already exchanged it.
//     Deliveries to another shard are staged in that shard's mailbox and
//     merged, deterministically sorted, at the barrier.
//   - Events are totally ordered by a partition-independent key
//     (time, actor, class, a, b): per-actor schedule order for local
//     events, (sender, sender-sequence) for deliveries. A 1-shard run
//     executes exactly this order; an N-shard run executes each actor's
//     subsequence of it, which is indistinguishable to the model.
//
// Randomness: derive one stream per actor (or per stable concern) with
// Stream and draw from it only inside that actor's events. Per-shard
// streams would break shard-count invariance — actor-to-shard assignment
// changes with the shard count, stable names do not.

import (
	"context"
	"errors"
	"fmt"
	"math"
	"runtime/debug"
	"sort"
	"sync"
	"sync/atomic"
	"time"
)

// ActorID identifies one model entity (a node, an asset) owned by
// exactly one shard. IDs must be small non-negative integers; the
// engine indexes actors by ID.
type ActorID int32

// ShardedConfig parameterizes a Sharded engine.
type ShardedConfig struct {
	// Shards is the number of partitions and worker goroutines
	// (default 1).
	Shards int
	// Lookahead is the conservative window width: the minimum latency of
	// any cross-actor Send (default 100ms). Smaller lookahead means finer
	// synchronization and more barriers; it never changes results.
	Lookahead time.Duration
}

func (c ShardedConfig) withDefaults() ShardedConfig {
	if c.Shards <= 0 {
		c.Shards = 1
	}
	if c.Lookahead <= 0 {
		c.Lookahead = 100 * time.Millisecond
	}
	return c
}

// shardEvent is one queued unit of work. The five-part key (at, actor,
// class, a, b) totally orders all events in the run and depends only on
// model decisions, never on the shard count.
type shardEvent struct {
	at    time.Duration
	actor ActorID
	// class 0: locally scheduled (a = per-actor sequence, b = 0).
	// class 1: delivery (a = sender actor, b = sender's send sequence).
	class uint8
	a, b  uint64
	label string
	fn    func(*ShardCtx)
	index int         // heap index
	next  *shardEvent // free-list link while recycled
}

func (e *shardEvent) before(o *shardEvent) bool {
	if e.at != o.at {
		return e.at < o.at
	}
	if e.actor != o.actor {
		return e.actor < o.actor
	}
	if e.class != o.class {
		return e.class < o.class
	}
	if e.a != o.a {
		return e.a < o.a
	}
	return e.b < o.b
}

// shardHeap is an intrusive binary min-heap over the five-part event
// key. Like the sequential engine's eventQueue, the sift loops are
// hand-rolled so the per-event path has no interface-method dispatch;
// the index field supports O(1) removal when an actor migrates.
type shardHeap []*shardEvent

func (q *shardHeap) push(ev *shardEvent) {
	ev.index = len(*q)
	*q = append(*q, ev)
	q.siftUp(ev.index)
}

func (q *shardHeap) pop() *shardEvent {
	s := *q
	n := len(s) - 1
	top := s[0]
	s[0] = s[n]
	s[0].index = 0
	s[n] = nil
	*q = s[:n]
	if n > 0 {
		q.siftDown(0)
	}
	top.index = -1
	return top
}

// removeAt unlinks the event at heap index i, restoring the heap
// property around the hole.
func (q *shardHeap) removeAt(i int) *shardEvent {
	s := *q
	n := len(s) - 1
	ev := s[i]
	if i != n {
		s[i] = s[n]
		s[i].index = i
	}
	s[n] = nil
	*q = s[:n]
	if i < n {
		q.siftDown(i)
		q.siftUp(i)
	}
	ev.index = -1
	return ev
}

func (q shardHeap) siftUp(i int) {
	for i > 0 {
		p := (i - 1) / 2
		if !q[i].before(q[p]) {
			return
		}
		q[i], q[p] = q[p], q[i]
		q[i].index = i
		q[p].index = p
		i = p
	}
}

func (q shardHeap) siftDown(i int) {
	n := len(q)
	for {
		l := 2*i + 1
		if l >= n {
			return
		}
		m := l
		if r := l + 1; r < n && q[r].before(q[l]) {
			m = r
		}
		if !q[m].before(q[i]) {
			return
		}
		q[i], q[m] = q[m], q[i]
		q[i].index = i
		q[m].index = m
		i = m
	}
}

// migration is one staged actor handoff, applied at the next barrier.
type migration struct {
	actor ActorID
	to    int32
}

// lane is one shard's runtime state. The queue and clock are touched
// only by the lane's worker during a window and by the coordinator at
// barriers; the inbox is the only concurrently written structure. The
// //iobt:barrier-only fields are enforced by the barrierstate analyzer:
// access requires an //iobt:barrier function or the lane's own mutex.
type lane struct {
	id int
	//iobt:barrier-only
	queue shardHeap
	//iobt:barrier-only
	now time.Duration

	inboxMu sync.Mutex
	inbox   []*shardEvent //iobt:barrier-only

	// inboxSpare is the drained inbox buffer from the previous barrier,
	// swapped back in at the next drain so the two buffers ping-pong and
	// steady-state staging never grows a fresh slice.
	inboxSpare []*shardEvent //iobt:barrier-only

	// migrations staged by this lane's own events during the window;
	// drained by the coordinator at the barrier.
	migrations []migration //iobt:barrier-only

	// free is the lane's recycled-event pool (linked through
	// shardEvent.next). It is owner-only like the queue: the lane's own
	// worker allocates (Schedule, and Send — senders draw from their own
	// lane's pool) and frees (after executing an event), and the
	// coordinator allocates at barriers (ScheduleActor). Events sent
	// cross-shard drift between pools, which is harmless: each pool is
	// still touched by exactly one goroutine at a time.
	free *shardEvent //iobt:barrier-only

	// processed, pending, and clamped are mutated by the worker and read
	// by aggregating observers at any time, hence atomic (mutex-free).
	processed atomic.Uint64
	pending   atomic.Int64
	clamped   atomic.Uint64

	ctx ShardCtx // reused per event; never escapes the worker
}

// allocEvent takes an event from the lane's pool (or the heap when the
// pool is dry). Callers fill every key field; the struct arrives
// zeroed.
//
//iobt:barrier
//iobt:hot
func (ln *lane) allocEvent() *shardEvent {
	ev := ln.free
	if ev == nil {
		//iobt:allow hotalloc pool refill: each lane's free list warms to its peak in-flight event count, then alloc-on-sender/free-on-executor recycles structs forever
		return &shardEvent{}
	}
	ln.free = ev.next
	ev.next = nil
	return ev
}

// freeEvent recycles an executed event into the lane's pool, zeroing
// it so the pool never pins closures or labels past the firing.
//
//iobt:barrier
//iobt:hot
func (ln *lane) freeEvent(ev *shardEvent) {
	*ev = shardEvent{next: ln.free}
	ln.free = ev
}

// actorMeta is the engine's bookkeeping for one actor. shard is written
// only at barriers (coordinator) and read during windows; seq and
// sendSeq are written only by the owning lane's worker.
type actorMeta struct {
	shard   int32
	seq     uint64
	sendSeq uint64
	present bool
}

// ShardPanicError reports a panic inside a shard worker. The barrier
// protocol guarantees the remaining workers still finish their window
// and the run returns this error instead of deadlocking.
type ShardPanicError struct {
	Shard int
	Value any
	Stack []byte
}

func (e *ShardPanicError) Error() string {
	return fmt.Sprintf("sim: shard %d panicked: %v", e.Shard, e.Value)
}

// Sharded is the spatially partitioned parallel discrete-event engine.
// Setup (AddActor, ScheduleActor) is single-threaded; Run drives the
// worker pool. Observers may call Now, Processed, and Pending from any
// goroutine during a run.
type Sharded struct {
	cfg   ShardedConfig
	rng   *RNG
	lanes []*lane

	actors []actorMeta

	nowNS     atomic.Int64
	stopped   atomic.Bool
	running   atomic.Bool
	inBarrier atomic.Bool

	// probe, when set, observes every executed event. With more than one
	// shard it is called concurrently and must be safe for concurrent
	// use.
	probe func(shard int, actor ActorID, at time.Duration, label string)

	// atBarrier runs on the coordinator between windows, when no worker
	// executes: the one place that may safely inspect all model state
	// mid-run (invariant sweeps, progress reporting).
	atBarrier func(now time.Duration)

	panicMu sync.Mutex
	panics  []*ShardPanicError

	// workCh, when non-nil, carries window assignments to the persistent
	// per-lane workers spawned for the duration of one RunContext call;
	// windowWG joins each window, workerWG joins worker shutdown.
	// Spawning once per run instead of once per window keeps the
	// per-window cost to channel handoffs (no goroutine or closure
	// allocation on the steady-state path).
	workCh   []chan windowSpec
	windowWG sync.WaitGroup
	workerWG sync.WaitGroup
}

// windowSpec is one window assignment handed to a lane worker.
type windowSpec struct {
	end       time.Duration
	inclusive bool
}

// NewSharded returns a sharded engine seeded with seed.
func NewSharded(seed int64, cfg ShardedConfig) *Sharded {
	cfg = cfg.withDefaults()
	s := &Sharded{cfg: cfg, rng: NewRNG(seed)}
	s.lanes = make([]*lane, cfg.Shards)
	for i := range s.lanes {
		ln := &lane{id: i}
		ln.ctx.ln = ln
		ln.ctx.s = s
		s.lanes[i] = ln
	}
	return s
}

// Shards returns the shard count.
func (s *Sharded) Shards() int { return s.cfg.Shards }

// Lookahead returns the conservative window width.
func (s *Sharded) Lookahead() time.Duration { return s.cfg.Lookahead }

// Now returns the conservative global virtual clock: exact between
// windows, a lower bound while a window executes. Safe from any
// goroutine.
func (s *Sharded) Now() time.Duration { return time.Duration(s.nowNS.Load()) }

// Processed returns the total number of executed events, aggregated
// from the per-shard atomic counters. Safe from any goroutine.
func (s *Sharded) Processed() uint64 {
	var n uint64
	for _, ln := range s.lanes {
		n += ln.processed.Load()
	}
	return n
}

// ClampedSends returns how many Send delays were raised to the
// Lookahead floor, aggregated from the per-shard atomic counters. Safe
// from any goroutine. The count is attributed to the *sending* shard,
// so it is shard-count dependent per lane but invariant in total.
func (s *Sharded) ClampedSends() uint64 {
	var n uint64
	for _, ln := range s.lanes {
		n += ln.clamped.Load()
	}
	return n
}

// Pending returns the number of queued events (heaps plus mailboxes),
// aggregated from the per-shard atomic counters. Safe from any
// goroutine.
func (s *Sharded) Pending() int {
	var n int64
	for _, ln := range s.lanes {
		n += ln.pending.Load()
	}
	return int(n)
}

// Stream derives an independent, reproducible random stream from the
// engine seed and name, exactly like Engine.Stream. Derive one stream
// per actor (e.g. "node/17") at setup and draw from it only inside that
// actor's events.
func (s *Sharded) Stream(name string) *RNG { return s.rng.Derive(name) }

// SetProbe installs an execution observer called for every event as
// (shard, actor, virtual time, label). With Shards > 1 it is invoked
// concurrently from worker goroutines and must be concurrency-safe.
func (s *Sharded) SetProbe(fn func(shard int, actor ActorID, at time.Duration, label string)) {
	s.probe = fn
}

// AtBarrier installs a hook run by the coordinator between windows
// (workers quiescent), with the window-end virtual time. It is the safe
// place for mid-run invariant checks over the whole model.
func (s *Sharded) AtBarrier(fn func(now time.Duration)) { s.atBarrier = fn }

// AddActor registers actor id on the given shard. Call before Run; ids
// must be non-negative and the shard must be in range. Re-adding an
// existing actor only updates its shard when it has no pending events.
func (s *Sharded) AddActor(id ActorID, shard int) {
	if id < 0 {
		panic(fmt.Sprintf("sim: negative actor id %d", id))
	}
	if shard < 0 || shard >= s.cfg.Shards {
		panic(fmt.Sprintf("sim: shard %d out of range [0,%d)", shard, s.cfg.Shards))
	}
	if s.running.Load() {
		panic("sim: AddActor during Run")
	}
	for int(id) >= len(s.actors) {
		s.actors = append(s.actors, actorMeta{})
	}
	m := &s.actors[id]
	m.shard = int32(shard)
	m.present = true
}

// ActorShard returns the shard currently owning actor id, or -1 when
// the actor is unknown. Exact only between windows.
func (s *Sharded) ActorShard(id ActorID) int {
	if int(id) >= len(s.actors) || !s.actors[id].present {
		return -1
	}
	return int(s.actors[id].shard)
}

// ScheduleActor queues a local event on actor id at delay from the
// current global clock. Setup-time counterpart of ShardCtx.Schedule;
// call before Run or from an AtBarrier hook (workers are quiescent at a
// barrier, so direct heap pushes are safe there).
//
//iobt:barrier
func (s *Sharded) ScheduleActor(id ActorID, delay time.Duration, label string, fn func(*ShardCtx)) {
	if s.running.Load() && !s.inBarrier.Load() {
		panic("sim: ScheduleActor during Run (use ShardCtx.Schedule)")
	}
	s.mustActor(id)
	if delay < 0 {
		delay = 0
	}
	m := &s.actors[id]
	ln := s.lanes[m.shard]
	ev := ln.allocEvent()
	ev.at = s.Now() + delay
	ev.actor = id
	ev.a = m.seq
	ev.label = label
	ev.fn = fn
	m.seq++
	ln.queue.push(ev)
	ln.pending.Add(1)
}

func (s *Sharded) mustActor(id ActorID) {
	if id < 0 || int(id) >= len(s.actors) || !s.actors[id].present {
		panic(fmt.Sprintf("sim: unknown actor %d", id))
	}
}

// Stop halts the run: workers stop after their current event and the
// coordinator returns ErrStopped at the next barrier. Safe from any
// goroutine, including during a barrier wait.
func (s *Sharded) Stop() { s.stopped.Store(true) }

// Run executes windows until every queue drains or the horizon is
// reached. A zero horizon means no time limit.
func (s *Sharded) Run(horizon time.Duration) error {
	return s.RunContext(context.Background(), horizon)
}

// RunContext is Run with cooperative cancellation: workers observe the
// context between events, the coordinator between windows, and the run
// returns context.Cause(ctx) once cancelled. Like Engine.RunContext,
// cancellation decides how far the fixed event order gets, never what
// the order is.
func (s *Sharded) RunContext(ctx context.Context, horizon time.Duration) error {
	if s.running.Swap(true) {
		return errors.New("sim: sharded engine already running")
	}
	defer s.running.Store(false)
	s.stopped.Store(false)
	s.panics = nil

	w := s.cfg.Lookahead
	limit := time.Duration(math.MaxInt64)
	if horizon != 0 {
		limit = s.Now() + horizon
	}
	done := ctx.Done()
	if len(s.lanes) > 1 {
		s.startWorkers(ctx)
		defer s.stopWorkers()
	}
	// A previous interrupted run may have left staged deliveries in the
	// mailboxes; fold them in so nextEventTime sees the whole backlog.
	s.drainInboxes()

	for {
		if done != nil {
			select {
			case <-done:
				return context.Cause(ctx)
			default:
			}
		}
		if s.stopped.Load() {
			return ErrStopped
		}
		next, ok := s.nextEventTime()
		if !ok {
			// Drained. Leave the clock at the last window boundary (or
			// advance to the horizon so timed runs end at their limit).
			if horizon != 0 {
				s.setNow(limit)
			}
			return nil
		}
		if next > limit {
			s.setNow(limit)
			return nil
		}
		// Jump to the window containing the next event: empty windows
		// cost nothing.
		k := next / w
		end := (k + 1) * w
		inclusive := false
		if end >= limit {
			end = limit
			inclusive = true // the final window executes events AT the horizon
		}
		s.runWindow(ctx, end, inclusive)
		// Staged deliveries are folded into the heaps in every exit path
		// so an interrupted run never strands events in a mailbox.
		s.drainInboxes()
		s.applyMigrations()
		if err := s.takePanic(); err != nil {
			s.stopped.Store(true)
			return err
		}
		if s.stopped.Load() {
			// Halted mid-window: leave the clock at the last barrier so a
			// resumed run re-enters the unfinished window.
			return ErrStopped
		}
		if done != nil {
			// Same for cancellation: workers bail out between events, so an
			// interrupted window must not advance the barrier clock past the
			// events it never ran.
			select {
			case <-done:
				return context.Cause(ctx)
			default:
			}
		}
		s.setNow(end)
		if s.atBarrier != nil {
			s.inBarrier.Store(true)
			s.atBarrier(end)
			s.inBarrier.Store(false)
		}
		if s.stopped.Load() {
			return ErrStopped
		}
		// No early return after an inclusive window: deliveries generated
		// inside it may land exactly at the horizon and, like Engine's
		// at-most-limit semantics, must still execute. The loop exits when
		// nothing at or before the limit remains.
	}
}

// nextEventTime returns the earliest queued event time across all lanes
// (inboxes are empty between windows).
//
//iobt:barrier
func (s *Sharded) nextEventTime() (time.Duration, bool) {
	var next time.Duration
	found := false
	for _, ln := range s.lanes {
		if len(ln.queue) == 0 {
			continue
		}
		if at := ln.queue[0].at; !found || at < next {
			next = at
			found = true
		}
	}
	return next, found
}

// setNow raises the global clock (it never rewinds: an interrupted
// window may leave the store ahead of an individual lane).
//
//iobt:barrier
func (s *Sharded) setNow(t time.Duration) {
	if int64(t) > s.nowNS.Load() {
		s.nowNS.Store(int64(t))
	}
	for _, ln := range s.lanes {
		if ln.now < t {
			ln.now = t
		}
	}
}

// startWorkers spawns one persistent goroutine per lane for the
// duration of a multi-shard run. Workers block on their assignment
// channel, execute the window on their own lane, and report back
// through windowWG — the barrier cannot deadlock because workers only
// pop their own heap and stage into mutex-guarded mailboxes, never
// wait on each other.
func (s *Sharded) startWorkers(ctx context.Context) {
	s.workCh = make([]chan windowSpec, len(s.lanes))
	for i, ln := range s.lanes {
		ch := make(chan windowSpec, 1)
		s.workCh[i] = ch
		s.workerWG.Add(1)
		go func(ln *lane, ch chan windowSpec) {
			defer s.workerWG.Done()
			for spec := range ch {
				s.laneWindowGuarded(ln, ctx, spec.end, spec.inclusive)
				s.windowWG.Done()
			}
		}(ln, ch)
	}
}

// stopWorkers shuts the worker pool down and waits for every worker to
// exit, so no goroutine outlives the Run call that spawned it.
func (s *Sharded) stopWorkers() {
	for _, ch := range s.workCh {
		close(ch)
	}
	s.workerWG.Wait()
	s.workCh = nil
}

// laneWindowGuarded is laneWindow behind the worker panic fence: a
// panicking event is recorded (and surfaced at the barrier) without
// killing the worker, so the window still joins.
func (s *Sharded) laneWindowGuarded(ln *lane, ctx context.Context, end time.Duration, inclusive bool) {
	defer func() {
		if r := recover(); r != nil {
			s.recordPanic(&ShardPanicError{Shard: ln.id, Value: r, Stack: debug.Stack()})
		}
	}()
	s.laneWindow(ln, ctx, end, inclusive)
}

// runWindow executes one window on every lane: handed to the
// persistent workers when a multi-shard run has them up, inline
// otherwise (single shard, and barrier-time use).
func (s *Sharded) runWindow(ctx context.Context, end time.Duration, inclusive bool) {
	if s.workCh == nil {
		for _, ln := range s.lanes {
			s.laneWindow(ln, ctx, end, inclusive)
		}
		return
	}
	s.windowWG.Add(len(s.workCh))
	for _, ch := range s.workCh {
		ch <- windowSpec{end: end, inclusive: inclusive}
	}
	s.windowWG.Wait()
}

// laneWindow drains one lane's heap up to the window end (strict, so
// boundary events wait for the barrier that delivers their mail —
// inclusive only at the final horizon window, mirroring Engine's
// at-most-limit semantics).
//
//iobt:barrier
//iobt:hot
func (s *Sharded) laneWindow(ln *lane, ctx context.Context, end time.Duration, inclusive bool) {
	done := ctx.Done()
	for len(ln.queue) > 0 {
		top := ln.queue[0]
		if top.at > end || (top.at == end && !inclusive) {
			break
		}
		if s.stopped.Load() {
			return
		}
		if done != nil {
			select {
			case <-done:
				return
			default:
			}
		}
		ev := ln.queue.pop()
		// Causality guard against the conservative global clock, not the
		// lane clock: after an interrupted window a migrated-in event may
		// trail the destination lane's local progress, but nothing may ever
		// trail the last barrier.
		if floor := time.Duration(s.nowNS.Load()); ev.at < floor {
			panic(fmt.Sprintf("sim: shard %d event %q at %v scheduled before barrier %v", ln.id, ev.label, ev.at, floor))
		}
		if ev.at > ln.now {
			ln.now = ev.at
		}
		ln.pending.Add(-1)
		ln.processed.Add(1)
		if s.probe != nil {
			s.probe(ln.id, ev.actor, ev.at, ev.label)
		}
		ln.ctx.actor = ev.actor
		ln.ctx.at = ev.at
		// Recycle into the executing lane's pool before firing so a
		// self-rescheduling actor reuses its own struct.
		fn := ev.fn
		ln.freeEvent(ev)
		fn(&ln.ctx)
	}
}

func (s *Sharded) recordPanic(p *ShardPanicError) {
	s.panicMu.Lock()
	s.panics = append(s.panics, p)
	s.panicMu.Unlock()
}

// takePanic returns the recorded worker panic with the lowest shard id
// (deterministic when several shards panicked in one window), or nil.
func (s *Sharded) takePanic() error {
	s.panicMu.Lock()
	defer s.panicMu.Unlock()
	if len(s.panics) == 0 {
		return nil
	}
	sort.Slice(s.panics, func(i, j int) bool { return s.panics[i].Shard < s.panics[j].Shard })
	return s.panics[0]
}

// drainInboxes merges every lane's mailbox into its heap. Merged order
// cannot depend on which worker staged first: the five-part event key
// is strictly unique (per-actor schedule sequences, per-sender send
// sequences), so the heap's pop sequence is the sorted key order
// whatever the push order was — no pre-sort needed. The drained buffer
// is kept as the spare and swapped back in at the next barrier, so
// steady-state staging reuses two ping-ponged buffers instead of
// growing a fresh slice every window.
//
//iobt:barrier
//iobt:hot
func (s *Sharded) drainInboxes() {
	for _, ln := range s.lanes {
		//iobt:allow defercycle one uncontended lock per lane per barrier swaps the staged mailbox out; the lock bounds worker staging, not per-event work
		ln.inboxMu.Lock()
		in := ln.inbox
		ln.inbox = ln.inboxSpare[:0]
		ln.inboxMu.Unlock()
		for _, ev := range in {
			ln.queue.push(ev)
		}
		clear(in) // drop event pointers so the spare pins nothing
		ln.inboxSpare = in[:0]
	}
}

// applyMigrations hands staged actors to their new shards, moving every
// pending event with them so nothing is dropped or duplicated. Staged
// entries for one actor all come from its owning lane in execution
// order, so "last staged wins" is deterministic.
//
//iobt:barrier
func (s *Sharded) applyMigrations() {
	for _, ln := range s.lanes {
		if len(ln.migrations) == 0 {
			continue
		}
		for _, mg := range ln.migrations {
			s.moveActor(mg.actor, mg.to)
		}
		ln.migrations = ln.migrations[:0]
	}
}

//
//iobt:barrier
func (s *Sharded) moveActor(id ActorID, to int32) {
	m := &s.actors[id]
	if m.shard == to {
		return
	}
	from := s.lanes[m.shard]
	dst := s.lanes[to]
	// Collect the actor's pending events, then relocate them. Heap
	// removal shifts indices, so gather pointers first and remove by
	// their live index field.
	var moving []*shardEvent
	for _, ev := range from.queue {
		if ev.actor == id {
			moving = append(moving, ev)
		}
	}
	for _, ev := range moving {
		from.queue.removeAt(ev.index)
	}
	// Deterministic insertion (the heap's total order makes push order
	// irrelevant, but sorted insertion keeps the walk auditable).
	sort.Slice(moving, func(i, j int) bool { return moving[i].before(moving[j]) })
	for _, ev := range moving {
		dst.queue.push(ev)
	}
	if n := int64(len(moving)); n > 0 {
		from.pending.Add(-n)
		dst.pending.Add(n)
	}
	m.shard = to
}

// ShardCtx is the execution context handed to every event callback. It
// is owned by the executing worker and must not be retained beyond the
// callback.
type ShardCtx struct {
	s     *Sharded
	ln    *lane
	actor ActorID
	at    time.Duration
}

// Now returns the executing event's virtual time.
func (c *ShardCtx) Now() time.Duration { return c.at }

// Self returns the actor the current event belongs to.
func (c *ShardCtx) Self() ActorID { return c.actor }

// Shard returns the executing shard's index (an observability aid; the
// model must never branch on it).
func (c *ShardCtx) Shard() int { return c.ln.id }

// Engine returns the owning sharded engine.
func (c *ShardCtx) Engine() *Sharded { return c.s }

// Schedule queues a local follow-up event on the current actor. Local
// events may use any non-negative delay — they stay on this shard and
// need no lookahead.
//
//iobt:barrier
//iobt:hot
func (c *ShardCtx) Schedule(delay time.Duration, label string, fn func(*ShardCtx)) {
	if delay < 0 {
		delay = 0
	}
	m := &c.s.actors[c.actor]
	ev := c.ln.allocEvent()
	ev.at = c.at + delay
	ev.actor = c.actor
	ev.a = m.seq
	ev.label = label
	ev.fn = fn
	m.seq++
	c.ln.queue.push(ev)
	c.ln.pending.Add(1)
}

// Send schedules fn on actor dst after delay. Cross-actor causality is
// what the conservative windows synchronize, so the delay is clamped up
// to the engine Lookahead: anything sent during this window arrives in
// a later one, staged in the mailbox of whichever shard owns dst and
// merged at the barrier. Ordering is by (time, dst, sender,
// sender-sequence). Each clamp increments the sending shard's counter,
// surfaced by ClampedSends — a model whose latencies routinely ride the
// floor is really simulating the Lookahead, not its stated delays.
//
//iobt:hot
func (c *ShardCtx) Send(dst ActorID, delay time.Duration, label string, fn func(*ShardCtx)) {
	s := c.s
	s.mustActor(dst)
	if delay < s.cfg.Lookahead {
		delay = s.cfg.Lookahead
		c.ln.clamped.Add(1)
	}
	src := &s.actors[c.actor]
	// The event struct comes from the *sender's* lane pool (the only one
	// this worker owns) and is freed into the executing lane's pool.
	ev := c.ln.allocEvent()
	ev.at = c.at + delay
	ev.actor = dst
	ev.class = 1
	ev.a = uint64(c.actor)
	ev.b = src.sendSeq
	ev.label = label
	ev.fn = fn
	src.sendSeq++
	// Every delivery goes through the destination mailbox — even to the
	// sender's own shard. A same-shard fast path into the live heap
	// would let a delivery landing exactly on the final (inclusive)
	// window boundary execute when co-sharded but stay pending when
	// cross-sharded, breaking shard-count invariance at the horizon.
	dl := s.lanes[s.actors[dst].shard]
	dl.inboxMu.Lock()
	dl.inbox = append(dl.inbox, ev)
	dl.inboxMu.Unlock()
	dl.pending.Add(1)
}

// Migrate stages a handoff of the current actor to another shard,
// applied at the next barrier together with every pending event (the
// spatial layer calls this when mobility carries an actor across a
// shard boundary). Migration never reorders events — ordering is keyed
// by actor, not by shard.
//
//iobt:barrier
func (c *ShardCtx) Migrate(shard int) {
	if shard < 0 || shard >= c.s.cfg.Shards {
		panic(fmt.Sprintf("sim: migrate to shard %d out of range [0,%d)", shard, c.s.cfg.Shards))
	}
	c.ln.migrations = append(c.ln.migrations, migration{actor: c.actor, to: int32(shard)})
}
