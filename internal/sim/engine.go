// Package sim provides a deterministic discrete-event simulation engine.
//
// The engine is the substrate for every IoBT experiment in this
// repository: a virtual clock, a priority queue of timestamped events, and
// seeded random-number streams. Determinism is a hard requirement — two
// runs with the same seed must produce identical traces — so all
// randomness used anywhere in the system must come from Engine.RNG
// streams, never from math/rand's global source or from time.Now.
package sim

import (
	"context"
	"errors"
	"fmt"
	"math"
	"sync/atomic"
	"time"
)

// Event is a unit of simulated work scheduled at a virtual time.
//
// Events are pooled: once fired (or popped canceled) the engine
// recycles the struct through a free list, so the steady-state
// scheduling path allocates nothing (pinned by TestEngineZeroAlloc and
// the CI bench gate). Recycling bumps gen, which is what keeps stale
// Handles inert instead of canceling an unrelated reused event.
type Event struct {
	// At is the virtual time at which the event fires.
	At time.Duration
	// Fn is the action to run. It may schedule further events.
	Fn func()
	// Label is an optional tag used in traces and debugging.
	Label string

	seq      uint64 // tie-breaker: FIFO among equal timestamps
	index    int    // heap index, -1 when not queued
	canceled bool
	gen      uint32 // bumped on recycle; Handles remember the gen they saw
	next     *Event // free-list link while recycled
}

// Handle refers to a scheduled event and allows cancellation. A Handle
// outliving its event is safe: firing recycles the event under a new
// generation, so the stale Handle reports !Pending and Cancel is a
// no-op.
type Handle struct {
	ev  *Event
	gen uint32
}

// Cancel prevents the event from firing. Canceling an already-fired or
// already-canceled event is a no-op. Returns true if the event was
// pending and is now canceled.
func (h Handle) Cancel() bool {
	if h.ev == nil || h.ev.gen != h.gen || h.ev.canceled || h.ev.index < 0 {
		return false
	}
	h.ev.canceled = true
	return true
}

// Pending reports whether the event is still queued and not canceled.
func (h Handle) Pending() bool {
	return h.ev != nil && h.ev.gen == h.gen && !h.ev.canceled && h.ev.index >= 0
}

// eventQueue is an intrusive binary min-heap ordered by (At, seq). The
// sift loops are hand-rolled rather than container/heap so the per-event
// path stays free of interface-method dispatch; each element carries its
// index so cancellation checks stay O(1).
type eventQueue []*Event

func (q eventQueue) less(i, j int) bool {
	if q[i].At != q[j].At {
		return q[i].At < q[j].At
	}
	return q[i].seq < q[j].seq
}

func (q *eventQueue) push(ev *Event) {
	ev.index = len(*q)
	*q = append(*q, ev)
	q.siftUp(ev.index)
}

func (q *eventQueue) pop() *Event {
	s := *q
	n := len(s) - 1
	top := s[0]
	s[0] = s[n]
	s[0].index = 0
	s[n] = nil
	*q = s[:n]
	if n > 0 {
		q.siftDown(0)
	}
	top.index = -1
	return top
}

func (q eventQueue) siftUp(i int) {
	for i > 0 {
		p := (i - 1) / 2
		if !q.less(i, p) {
			return
		}
		q[i], q[p] = q[p], q[i]
		q[i].index = i
		q[p].index = p
		i = p
	}
}

func (q eventQueue) siftDown(i int) {
	n := len(q)
	for {
		l := 2*i + 1
		if l >= n {
			return
		}
		m := l
		if r := l + 1; r < n && q.less(r, l) {
			m = r
		}
		if !q.less(m, i) {
			return
		}
		q[i], q[m] = q[m], q[i]
		q[i].index = i
		q[m].index = m
		i = m
	}
}

// ErrStopped is returned by Run when the simulation was halted via Stop.
var ErrStopped = errors.New("simulation stopped")

// Engine is a single-threaded discrete-event simulator.
//
// Engine is not safe for concurrent use; the simulated world is
// deliberately sequential so that runs are reproducible. Concurrency in
// the modeled system is expressed as interleaved events, not goroutines.
type Engine struct {
	now     time.Duration
	queue   eventQueue
	seq     uint64
	stopped bool
	// processed counts events executed since construction and pending
	// mirrors len(queue). Both are atomic so external observers (service
	// watchdogs polling progress, aggregators over shard-worker engines)
	// can read them mutex-free while the loop runs; the loop itself
	// stays single-threaded.
	processed atomic.Uint64
	pending   atomic.Int64

	// free is the recycled-event pool (singly linked through Event.next).
	free *Event

	rng    *RNG
	tracer *Tracer
}

// NewEngine returns an engine with its virtual clock at zero and a master
// RNG seeded with seed.
func NewEngine(seed int64) *Engine {
	return &Engine{rng: NewRNG(seed)}
}

// Now returns the current virtual time.
func (e *Engine) Now() time.Duration { return e.now }

// Processed returns the number of events executed so far. Unlike the
// rest of the engine it is safe to call from any goroutine.
func (e *Engine) Processed() uint64 { return e.processed.Load() }

// Pending returns the number of events currently queued (including
// canceled events not yet discarded). Like Processed it is safe to
// call from any goroutine.
func (e *Engine) Pending() int { return int(e.pending.Load()) }

// RNG returns the engine's master random stream.
func (e *Engine) RNG() *RNG { return e.rng }

// Stream derives an independent, reproducible random stream from the
// engine seed and the given name. Use one stream per concern (mobility,
// channel noise, attacks …) so that adding randomness to one subsystem
// does not perturb another.
func (e *Engine) Stream(name string) *RNG { return e.rng.Derive(name) }

// Schedule queues fn to run after delay. A negative delay is an error in
// the model; it is clamped to zero so causality is preserved.
//
//iobt:hot
func (e *Engine) Schedule(delay time.Duration, label string, fn func()) Handle {
	if delay < 0 {
		delay = 0
	}
	ev := e.free
	if ev == nil {
		//iobt:allow hotalloc pool refill: allocates only until the free list warms to the peak queue depth, then the recycle-before-fire cycle reuses structs forever
		ev = &Event{}
	} else {
		e.free = ev.next
		ev.next = nil
	}
	ev.At = e.now + delay
	ev.Fn = fn
	ev.Label = label
	ev.seq = e.seq
	e.seq++
	e.queue.push(ev)
	e.pending.Add(1)
	return Handle{ev: ev, gen: ev.gen}
}

// recycle returns a popped event to the free list under a fresh
// generation. Fn and Label are cleared so the pool never pins closures
// or strings past the firing.
func (e *Engine) recycle(ev *Event) {
	ev.Fn = nil
	ev.Label = ""
	ev.canceled = false
	ev.gen++
	ev.next = e.free
	e.free = ev
}

// ScheduleAt queues fn at an absolute virtual time. Times in the past are
// clamped to now.
func (e *Engine) ScheduleAt(at time.Duration, label string, fn func()) Handle {
	if at < e.now {
		at = e.now
	}
	return e.Schedule(at-e.now, label, fn)
}

// Every schedules fn to run every interval until the returned ticker is
// stopped. The first firing is one interval from now.
func (e *Engine) Every(interval time.Duration, label string, fn func()) *Ticker {
	if interval <= 0 {
		interval = time.Nanosecond
	}
	t := &Ticker{engine: e, interval: interval, label: label, fn: fn}
	t.arm()
	return t
}

// Ticker is a repeating event created by Engine.Every.
type Ticker struct {
	engine   *Engine
	interval time.Duration
	label    string
	fn       func()
	handle   Handle
	stopped  bool
}

func (t *Ticker) arm() {
	t.handle = t.engine.Schedule(t.interval, t.label, func() {
		if t.stopped {
			return
		}
		t.fn()
		if !t.stopped {
			t.arm()
		}
	})
}

// Stop halts future firings. In-flight firings already dequeued still run.
func (t *Ticker) Stop() {
	t.stopped = true
	t.handle.Cancel()
}

// Stop halts the run loop after the current event completes.
func (e *Engine) Stop() { e.stopped = true }

// Step executes the single next event, advancing the clock. It returns
// false when the queue is empty.
//
//iobt:hot
func (e *Engine) Step() bool {
	for len(e.queue) > 0 {
		ev := e.queue.pop()
		e.pending.Add(-1)
		if ev.canceled {
			e.recycle(ev)
			continue
		}
		if ev.At < e.now {
			// Heap invariant violated; should be impossible.
			panic(fmt.Sprintf("sim: event %q at %v scheduled before now %v", ev.Label, ev.At, e.now))
		}
		e.now = ev.At
		e.processed.Add(1)
		if e.tracer != nil {
			e.tracer.record(ev.At, ev.Label)
		}
		// Recycle before firing so a self-rescheduling event reuses its
		// own struct: the steady-state pool size is the peak queue depth.
		fn := ev.Fn
		e.recycle(ev)
		fn()
		return true
	}
	return false
}

// Run executes events until the queue drains, the horizon is reached, or
// Stop is called. A zero horizon means no time limit. It returns
// ErrStopped if halted by Stop, nil otherwise.
func (e *Engine) Run(horizon time.Duration) error {
	return e.RunContext(context.Background(), horizon)
}

// RunContext is Run with cooperative cancellation: the loop observes ctx
// between events and returns context.Cause(ctx) once it is cancelled.
// Cancellation never perturbs determinism — the event order is fixed by
// the queue; ctx only decides how far along it the run gets. A
// background context (nil Done channel) adds no per-event cost.
func (e *Engine) RunContext(ctx context.Context, horizon time.Duration) error {
	done := ctx.Done()
	e.stopped = false
	limit := horizon
	if limit == 0 {
		limit = math.MaxInt64
	} else {
		limit = e.now + horizon
	}
	for !e.stopped {
		if done != nil {
			select {
			case <-done:
				return context.Cause(ctx)
			default:
			}
		}
		if len(e.queue) == 0 {
			return nil
		}
		next := e.queue[0].At
		if next > limit {
			e.now = limit
			return nil
		}
		e.Step()
	}
	return ErrStopped
}

// RunUntil executes events until pred returns true (checked after each
// event), the queue drains, or maxEvents events have run. It returns true
// if pred was satisfied.
func (e *Engine) RunUntil(pred func() bool, maxEvents uint64) bool {
	for n := uint64(0); n < maxEvents; n++ {
		if pred() {
			return true
		}
		if !e.Step() {
			return pred()
		}
	}
	return pred()
}
