package sim

import (
	"math"
	"sort"
	"testing"
	"testing/quick"
	"time"
)

func TestSeriesBasics(t *testing.T) {
	var s Series
	for _, v := range []float64{5, 1, 3, 2, 4} {
		s.Add(v)
	}
	if s.N() != 5 {
		t.Errorf("N = %d", s.N())
	}
	if s.Sum() != 15 {
		t.Errorf("Sum = %v", s.Sum())
	}
	if s.Mean() != 3 {
		t.Errorf("Mean = %v", s.Mean())
	}
	if s.Min() != 1 || s.Max() != 5 {
		t.Errorf("Min/Max = %v/%v", s.Min(), s.Max())
	}
	if s.Median() != 3 {
		t.Errorf("Median = %v", s.Median())
	}
}

func TestSeriesEmpty(t *testing.T) {
	var s Series
	if s.Mean() != 0 || s.Min() != 0 || s.Max() != 0 || s.Percentile(50) != 0 || s.Var() != 0 {
		t.Error("empty series should return zeros")
	}
}

func TestSeriesAddAfterQuery(t *testing.T) {
	var s Series
	s.Add(10)
	_ = s.Median() // forces sort
	s.Add(1)
	if s.Min() != 1 {
		t.Errorf("Min after re-add = %v, want 1", s.Min())
	}
}

func TestSeriesVar(t *testing.T) {
	var s Series
	for _, v := range []float64{2, 4, 4, 4, 5, 5, 7, 9} {
		s.Add(v)
	}
	if math.Abs(s.Var()-4) > 1e-12 {
		t.Errorf("Var = %v, want 4", s.Var())
	}
	if math.Abs(s.Stddev()-2) > 1e-12 {
		t.Errorf("Stddev = %v, want 2", s.Stddev())
	}
}

func TestAddDuration(t *testing.T) {
	var s Series
	s.AddDuration(1500 * time.Millisecond)
	if s.Mean() != 1.5 {
		t.Errorf("Mean = %v, want 1.5", s.Mean())
	}
}

// Property: percentile is monotone in p and bounded by min/max.
func TestPercentileMonotone(t *testing.T) {
	prop := func(vals []float64) bool {
		var s Series
		for _, v := range vals {
			if math.IsNaN(v) || math.IsInf(v, 0) {
				continue
			}
			s.Add(v)
		}
		if s.N() == 0 {
			return true
		}
		prev := s.Percentile(0)
		for p := 5.0; p <= 100; p += 5 {
			cur := s.Percentile(p)
			if cur < prev {
				return false
			}
			prev = cur
		}
		return s.Percentile(0) >= s.Min() && s.Percentile(100) <= s.Max()
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

// Property: nearest-rank percentile equals the sorted element directly.
func TestPercentileNearestRank(t *testing.T) {
	vals := []float64{15, 20, 35, 40, 50}
	var s Series
	for _, v := range vals {
		s.Add(v)
	}
	sort.Float64s(vals)
	if got := s.Percentile(30); got != 20 {
		t.Errorf("P30 = %v, want 20", got)
	}
	if got := s.Percentile(40); got != 20 {
		t.Errorf("P40 = %v, want 20", got)
	}
	if got := s.Percentile(100); got != 50 {
		t.Errorf("P100 = %v, want 50", got)
	}
}

func TestCounter(t *testing.T) {
	var c Counter
	c.Inc()
	c.Add(4)
	c.Add(-3) // ignored
	if c.Value() != 5 {
		t.Errorf("Value = %d, want 5", c.Value())
	}
}

func TestMetricsRegistry(t *testing.T) {
	m := NewMetrics()
	m.Series("b").Add(1)
	m.Series("a").Add(2)
	m.Counter("z").Inc()
	m.Counter("y").Inc()
	if m.Series("a").N() != 1 {
		t.Error("series not persisted")
	}
	sn := m.SeriesNames()
	if len(sn) != 2 || sn[0] != "a" || sn[1] != "b" {
		t.Errorf("SeriesNames = %v", sn)
	}
	cn := m.CounterNames()
	if len(cn) != 2 || cn[0] != "y" || cn[1] != "z" {
		t.Errorf("CounterNames = %v", cn)
	}
}

func TestSummaryString(t *testing.T) {
	var s Series
	s.Add(1)
	s.Add(2)
	str := s.Summarize().String()
	if str == "" {
		t.Error("empty summary string")
	}
}
