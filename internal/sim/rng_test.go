package sim

import (
	"math"
	"testing"
	"testing/quick"
)

func TestRNGReproducible(t *testing.T) {
	a, b := NewRNG(99), NewRNG(99)
	for i := 0; i < 100; i++ {
		if a.Float64() != b.Float64() {
			t.Fatal("same seed diverged")
		}
	}
}

func TestDeriveIndependentOfParentConsumption(t *testing.T) {
	a := NewRNG(5)
	b := NewRNG(5)
	for i := 0; i < 37; i++ {
		a.Float64() // consume some of a only
	}
	ca, cb := a.Derive("child"), b.Derive("child")
	for i := 0; i < 50; i++ {
		if ca.Float64() != cb.Float64() {
			t.Fatal("derived streams depend on parent consumption")
		}
	}
}

func TestDeriveDistinctNames(t *testing.T) {
	g := NewRNG(5)
	a, b := g.Derive("alpha"), g.Derive("beta")
	same := true
	for i := 0; i < 20; i++ {
		if a.Float64() != b.Float64() {
			same = false
			break
		}
	}
	if same {
		t.Error("differently named streams are identical")
	}
}

func TestUniformBounds(t *testing.T) {
	g := NewRNG(1)
	for i := 0; i < 1000; i++ {
		v := g.Uniform(3, 7)
		if v < 3 || v >= 7 {
			t.Fatalf("Uniform out of bounds: %v", v)
		}
	}
}

func TestBoolEdges(t *testing.T) {
	g := NewRNG(1)
	for i := 0; i < 100; i++ {
		if g.Bool(0) {
			t.Fatal("Bool(0) returned true")
		}
		if !g.Bool(1) {
			t.Fatal("Bool(1) returned false")
		}
	}
}

func TestBetaMoments(t *testing.T) {
	g := NewRNG(3)
	const n = 20000
	a, b := 2.0, 5.0
	sum := 0.0
	for i := 0; i < n; i++ {
		v := g.Beta(a, b)
		if v < 0 || v > 1 {
			t.Fatalf("Beta out of [0,1]: %v", v)
		}
		sum += v
	}
	mean := sum / n
	want := a / (a + b)
	if math.Abs(mean-want) > 0.01 {
		t.Errorf("Beta mean = %.4f, want ~%.4f", mean, want)
	}
}

func TestGammaMean(t *testing.T) {
	g := NewRNG(4)
	const n = 20000
	shape := 3.5
	sum := 0.0
	for i := 0; i < n; i++ {
		sum += g.Gamma(shape)
	}
	mean := sum / n
	if math.Abs(mean-shape) > 0.1 {
		t.Errorf("Gamma mean = %.3f, want ~%.3f", mean, shape)
	}
}

func TestGammaSmallShape(t *testing.T) {
	g := NewRNG(4)
	const n = 20000
	shape := 0.5
	sum := 0.0
	for i := 0; i < n; i++ {
		v := g.Gamma(shape)
		if v < 0 {
			t.Fatalf("negative gamma sample: %v", v)
		}
		sum += v
	}
	mean := sum / n
	if math.Abs(mean-shape) > 0.05 {
		t.Errorf("Gamma(0.5) mean = %.3f, want ~0.5", mean)
	}
}

func TestPoissonMean(t *testing.T) {
	g := NewRNG(5)
	for _, mean := range []float64{0.5, 4, 50, 800} {
		const n = 5000
		sum := 0
		for i := 0; i < n; i++ {
			sum += g.Poisson(mean)
		}
		got := float64(sum) / n
		if math.Abs(got-mean) > 0.05*mean+0.2 {
			t.Errorf("Poisson(%v) mean = %.3f", mean, got)
		}
	}
}

func TestPoissonNonPositive(t *testing.T) {
	g := NewRNG(5)
	if g.Poisson(0) != 0 || g.Poisson(-3) != 0 {
		t.Error("Poisson of non-positive mean should be 0")
	}
}

func TestZipfSkew(t *testing.T) {
	g := NewRNG(6)
	z := NewZipf(g, 100, 1.2)
	counts := make([]int, 100)
	for i := 0; i < 20000; i++ {
		counts[z.Next()]++
	}
	if counts[0] <= counts[50] {
		t.Errorf("Zipf not skewed: counts[0]=%d counts[50]=%d", counts[0], counts[50])
	}
}

// Property: Zipf samples always fall inside [0,n).
func TestZipfBounds(t *testing.T) {
	prop := func(seed int64, nRaw uint8) bool {
		n := int(nRaw%50) + 1
		g := NewRNG(seed)
		z := NewZipf(g, n, 1.0)
		for i := 0; i < 100; i++ {
			v := z.Next()
			if v < 0 || v >= n {
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, nil); err != nil {
		t.Error(err)
	}
}

func TestExpNonNegative(t *testing.T) {
	g := NewRNG(7)
	for i := 0; i < 1000; i++ {
		if g.Exp(2.5) < 0 {
			t.Fatal("negative exponential sample")
		}
	}
	if g.Exp(-1) != 0 {
		t.Error("Exp of negative mean should be 0")
	}
}

func TestRNGAccessors(t *testing.T) {
	g := NewRNG(42)
	if g.Seed() != 42 {
		t.Errorf("Seed = %d", g.Seed())
	}
	if v := g.Intn(10); v < 0 || v >= 10 {
		t.Errorf("Intn out of range: %d", v)
	}
	if g.Int63() < 0 {
		t.Error("Int63 negative")
	}
	p := g.Perm(5)
	seen := map[int]bool{}
	for _, v := range p {
		seen[v] = true
	}
	if len(seen) != 5 {
		t.Errorf("Perm = %v", p)
	}
	vals := []int{1, 2, 3, 4, 5}
	g.Shuffle(len(vals), func(i, j int) { vals[i], vals[j] = vals[j], vals[i] })
	sum := 0
	for _, v := range vals {
		sum += v
	}
	if sum != 15 {
		t.Error("Shuffle lost elements")
	}
	if g.Pick(0) != -1 || g.Pick(-1) != -1 {
		t.Error("Pick of empty should be -1")
	}
	if v := g.Pick(3); v < 0 || v >= 3 {
		t.Errorf("Pick = %d", v)
	}
}

func TestBetaInvalidParams(t *testing.T) {
	g := NewRNG(1)
	if g.Beta(0, 1) != 0.5 || g.Beta(1, -1) != 0.5 {
		t.Error("invalid Beta params should return 0.5")
	}
	if g.Gamma(-1) != 0 {
		t.Error("Gamma of non-positive shape should be 0")
	}
}
