package sim

import (
	"fmt"
	"math"
	"sort"
	"time"
)

// Series accumulates scalar observations and answers summary queries.
// The zero value is ready to use.
type Series struct {
	vals   []float64
	sorted bool
	sum    float64
}

// Add records one observation.
func (s *Series) Add(v float64) {
	s.vals = append(s.vals, v)
	s.sorted = false
	s.sum += v
}

// AddDuration records a duration in seconds.
func (s *Series) AddDuration(d time.Duration) { s.Add(d.Seconds()) }

// N returns the number of observations.
func (s *Series) N() int { return len(s.vals) }

// Sum returns the sum of all observations.
func (s *Series) Sum() float64 { return s.sum }

// Mean returns the arithmetic mean, or 0 for an empty series.
func (s *Series) Mean() float64 {
	if len(s.vals) == 0 {
		return 0
	}
	return s.sum / float64(len(s.vals))
}

// Var returns the population variance, or 0 for fewer than two samples.
func (s *Series) Var() float64 {
	n := len(s.vals)
	if n < 2 {
		return 0
	}
	m := s.Mean()
	acc := 0.0
	for _, v := range s.vals {
		d := v - m
		acc += d * d
	}
	return acc / float64(n)
}

// Stddev returns the population standard deviation.
func (s *Series) Stddev() float64 { return math.Sqrt(s.Var()) }

// Min returns the smallest observation, or 0 for an empty series.
func (s *Series) Min() float64 {
	if len(s.vals) == 0 {
		return 0
	}
	s.ensureSorted()
	return s.vals[0]
}

// Max returns the largest observation, or 0 for an empty series.
func (s *Series) Max() float64 {
	if len(s.vals) == 0 {
		return 0
	}
	s.ensureSorted()
	return s.vals[len(s.vals)-1]
}

// Percentile returns the p-th percentile (0..100) using nearest-rank on
// the sorted data, or 0 for an empty series.
func (s *Series) Percentile(p float64) float64 {
	n := len(s.vals)
	if n == 0 {
		return 0
	}
	s.ensureSorted()
	if p <= 0 {
		return s.vals[0]
	}
	if p >= 100 {
		return s.vals[n-1]
	}
	rank := int(math.Ceil(p / 100 * float64(n)))
	if rank < 1 {
		rank = 1
	}
	return s.vals[rank-1]
}

// Median returns the 50th percentile.
func (s *Series) Median() float64 { return s.Percentile(50) }

func (s *Series) ensureSorted() {
	if !s.sorted {
		sort.Float64s(s.vals)
		s.sorted = true
	}
}

// Summary is a compact five-number summary of a Series.
type Summary struct {
	N              int
	Mean, Min, Max float64
	P50, P90, P99  float64
	Stddev         float64
}

// Summarize computes a Summary snapshot.
func (s *Series) Summarize() Summary {
	return Summary{
		N:      s.N(),
		Mean:   s.Mean(),
		Min:    s.Min(),
		Max:    s.Max(),
		P50:    s.Percentile(50),
		P90:    s.Percentile(90),
		P99:    s.Percentile(99),
		Stddev: s.Stddev(),
	}
}

// String renders the summary on one line.
func (m Summary) String() string {
	return fmt.Sprintf("n=%d mean=%.4g p50=%.4g p90=%.4g p99=%.4g min=%.4g max=%.4g sd=%.4g",
		m.N, m.Mean, m.P50, m.P90, m.P99, m.Min, m.Max, m.Stddev)
}

// Counter is a monotonically increasing named count.
type Counter struct {
	n uint64
}

// Inc adds one.
func (c *Counter) Inc() { c.n++ }

// Add adds delta (negative deltas are ignored).
func (c *Counter) Add(delta int) {
	if delta > 0 {
		c.n += uint64(delta)
	}
}

// Value returns the current count.
func (c *Counter) Value() uint64 { return c.n }

// Metrics is a small registry of named series and counters used by
// experiments to collect results without global state.
type Metrics struct {
	series   map[string]*Series
	counters map[string]*Counter
}

// NewMetrics returns an empty registry.
func NewMetrics() *Metrics {
	return &Metrics{
		series:   make(map[string]*Series),
		counters: make(map[string]*Counter),
	}
}

// Series returns the named series, creating it on first use.
func (m *Metrics) Series(name string) *Series {
	s, ok := m.series[name]
	if !ok {
		s = &Series{}
		m.series[name] = s
	}
	return s
}

// Counter returns the named counter, creating it on first use.
func (m *Metrics) Counter(name string) *Counter {
	c, ok := m.counters[name]
	if !ok {
		c = &Counter{}
		m.counters[name] = c
	}
	return c
}

// SeriesNames returns the sorted list of series names.
func (m *Metrics) SeriesNames() []string {
	names := make([]string, 0, len(m.series))
	for k := range m.series {
		names = append(names, k)
	}
	sort.Strings(names)
	return names
}

// CounterNames returns the sorted list of counter names.
func (m *Metrics) CounterNames() []string {
	names := make([]string, 0, len(m.counters))
	for k := range m.counters {
		names = append(names, k)
	}
	sort.Strings(names)
	return names
}
