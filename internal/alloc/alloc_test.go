package alloc

import (
	"math"
	"testing"
	"testing/quick"
)

func TestMaxMinFairBasic(t *testing.T) {
	flows := []Flow{
		{ID: 1, Weight: 1, Demand: 10},
		{ID: 2, Weight: 1, Demand: 100},
		{ID: 3, Weight: 1, Demand: 100},
	}
	got := MaxMinFair(100, flows)
	// Flow 1 is satisfied (10); the rest split 90 evenly.
	if got[0] != 10 || math.Abs(got[1]-45) > 1e-9 || math.Abs(got[2]-45) > 1e-9 {
		t.Errorf("alloc = %v, want [10 45 45]", got)
	}
}

func TestMaxMinFairWeights(t *testing.T) {
	flows := []Flow{
		{ID: 1, Weight: 3, Demand: 1000},
		{ID: 2, Weight: 1, Demand: 1000},
	}
	got := MaxMinFair(100, flows)
	if math.Abs(got[0]-75) > 1e-9 || math.Abs(got[1]-25) > 1e-9 {
		t.Errorf("alloc = %v, want [75 25]", got)
	}
}

func TestMaxMinFairSurplus(t *testing.T) {
	flows := []Flow{{ID: 1, Weight: 1, Demand: 10}, {ID: 2, Weight: 1, Demand: 20}}
	got := MaxMinFair(1000, flows)
	if got[0] != 10 || got[1] != 20 {
		t.Errorf("alloc = %v, want fully satisfied", got)
	}
}

func TestMaxMinFairEdges(t *testing.T) {
	if got := MaxMinFair(0, []Flow{{ID: 1, Weight: 1, Demand: 5}}); got[0] != 0 {
		t.Error("zero capacity should allocate nothing")
	}
	if got := MaxMinFair(10, nil); len(got) != 0 {
		t.Error("nil flows should return empty")
	}
	got := MaxMinFair(10, []Flow{{ID: 1, Weight: 0, Demand: 5}, {ID: 2, Weight: 1, Demand: 0}})
	if got[0] != 0 || got[1] != 0 {
		t.Error("zero-weight/zero-demand flows should get nothing")
	}
}

// Properties: allocations never exceed demand, never go negative, and
// never exceed capacity in total.
func TestMaxMinFairInvariants(t *testing.T) {
	prop := func(capRaw uint16, demands []uint8) bool {
		capacity := float64(capRaw)
		flows := make([]Flow, len(demands))
		for i, d := range demands {
			flows[i] = Flow{ID: i, Weight: 1 + float64(i%3), Demand: float64(d)}
		}
		got := MaxMinFair(capacity, flows)
		total := 0.0
		for i := range flows {
			if got[i] < -1e-9 || got[i] > flows[i].Demand+1e-9 {
				return false
			}
			total += got[i]
		}
		return total <= capacity+1e-6
	}
	if err := quick.Check(prop, nil); err != nil {
		t.Error(err)
	}
}

func TestFIFOOrderMatters(t *testing.T) {
	flows := []Flow{
		{ID: 1, Class: ClassUntrusted, Demand: 90},
		{ID: 2, Class: ClassMission, Demand: 50},
	}
	got := FIFO(100, flows)
	if got[0] != 90 || got[1] != 10 {
		t.Errorf("FIFO = %v, want attacker-first starvation [90 10]", got)
	}
}

func TestIsolationProtectsMission(t *testing.T) {
	// Attacker demands everything; mission demands modest traffic.
	flows := []Flow{
		{ID: 1, Class: ClassMission, Weight: 1, Demand: 50},
		{ID: 2, Class: ClassUntrusted, Weight: 1, Demand: 10000},
	}
	got := Isolated(100, flows, DefaultShares())
	if got[0] < 50-1e-9 {
		t.Errorf("mission goodput = %v, want full 50 despite flood", got[0])
	}
	// Untrusted is capped at its share plus spill.
	if got[1] > 50+1e-9 {
		t.Errorf("untrusted took %v of 100", got[1])
	}
}

func TestIsolationSpillsUnusedShare(t *testing.T) {
	// Only telemetry flows: they should receive more than their 25%.
	flows := []Flow{{ID: 1, Class: ClassTelemetry, Weight: 1, Demand: 1000}}
	got := Isolated(100, flows, DefaultShares())
	if got[0] < 99 {
		t.Errorf("telemetry got %v, want ~100 via spill", got[0])
	}
}

func TestIsolatedEdges(t *testing.T) {
	if got := Isolated(0, []Flow{{ID: 1, Class: ClassMission, Weight: 1, Demand: 5}}, DefaultShares()); got[0] != 0 {
		t.Error("zero capacity")
	}
	if got := Isolated(10, nil, DefaultShares()); len(got) != 0 {
		t.Error("nil flows")
	}
	// Unconfigured class gets nothing until spill.
	flows := []Flow{{ID: 1, Class: Class(99), Weight: 1, Demand: 10}}
	got := Isolated(100, flows, DefaultShares())
	if got[0] < 10-1e-9 {
		t.Errorf("unconfigured class should be served by spill: %v", got)
	}
}

func TestAdmissionClips(t *testing.T) {
	flows := []Flow{{ID: 1, Demand: 100}, {ID: 2, Demand: 3}}
	got := Admission(flows, 10)
	if got[0].Demand != 10 || got[1].Demand != 3 {
		t.Errorf("admission = %+v", got)
	}
	if flows[0].Demand != 100 {
		t.Error("Admission mutated input")
	}
	same := Admission(flows, 0)
	if same[0].Demand != 100 {
		t.Error("non-positive limit should be a no-op")
	}
}

func TestGoodput(t *testing.T) {
	flows := []Flow{
		{ID: 1, Class: ClassMission, Demand: 10},
		{ID: 2, Class: ClassUntrusted, Demand: 10},
		{ID: 3, Class: ClassMission, Demand: 10},
	}
	alloc := []float64{5, 7, 2}
	if g := Goodput(flows, alloc, ClassMission); g != 7 {
		t.Errorf("goodput = %v, want 7", g)
	}
}

// TestSaturationShape is the E9 claim in miniature: as attacker demand
// grows, FIFO mission goodput collapses while Isolated stays flat.
func TestSaturationShape(t *testing.T) {
	mission := Flow{ID: 1, Class: ClassMission, Weight: 1, Demand: 40}
	for _, attack := range []float64{0, 100, 1000, 10000} {
		flows := []Flow{
			{ID: 2, Class: ClassUntrusted, Weight: 1, Demand: attack}, // arrives first
			mission,
		}
		fifo := FIFO(100, flows)
		iso := Isolated(100, flows, DefaultShares())
		if attack >= 100 && fifo[1] > 10 {
			t.Errorf("FIFO mission goodput %v should collapse at attack %v", fifo[1], attack)
		}
		if iso[1] < 40-1e-9 {
			t.Errorf("isolated mission goodput %v dropped at attack %v", iso[1], attack)
		}
	}
}

func TestPlacerPrefersEdgeForLatencySensitive(t *testing.T) {
	p := NewPlacer([]Node{
		{ID: 1, Tier: TierEdge, Capacity: 10},
		{ID: 2, Tier: TierBackend, Capacity: 100},
	})
	pl, err := p.Place([]Job{
		{ID: 1, Demand: 5, LatencySensitive: true},
		{ID: 2, Demand: 50, LatencySensitive: false},
	})
	if err != nil {
		t.Fatalf("place: %v", err)
	}
	if pl[1] != 1 {
		t.Errorf("latency-sensitive job on node %d, want edge (1)", pl[1])
	}
	if pl[2] != 2 {
		t.Errorf("batch job on node %d, want backend (2)", pl[2])
	}
	if p.Latency(1) >= p.Latency(2) {
		t.Error("latency ordering wrong")
	}
}

func TestPlacerCapacityExhausted(t *testing.T) {
	p := NewPlacer([]Node{{ID: 1, Tier: TierEdge, Capacity: 10}})
	if _, err := p.Place([]Job{{ID: 1, Demand: 20}}); err != ErrNoCapacity {
		t.Errorf("err = %v, want ErrNoCapacity", err)
	}
}

func TestPlacerFailoverReplacesJobs(t *testing.T) {
	p := NewPlacer([]Node{
		{ID: 1, Tier: TierEdge, Capacity: 10},
		{ID: 2, Tier: TierCore, Capacity: 10},
	})
	if _, err := p.Place([]Job{{ID: 1, Demand: 8, LatencySensitive: true}}); err != nil {
		t.Fatalf("place: %v", err)
	}
	if p.NodeOf(1) != 1 {
		t.Fatalf("job on node %d", p.NodeOf(1))
	}
	lost := p.FailNode(1)
	if len(lost) != 0 {
		t.Fatalf("lost jobs: %v", lost)
	}
	if p.NodeOf(1) != 2 {
		t.Errorf("job not migrated: node %d", p.NodeOf(1))
	}
}

func TestPlacerFailoverLosesWhenFull(t *testing.T) {
	p := NewPlacer([]Node{
		{ID: 1, Tier: TierEdge, Capacity: 10},
		{ID: 2, Tier: TierCore, Capacity: 5},
	})
	if _, err := p.Place([]Job{{ID: 1, Demand: 8}}); err != nil {
		t.Fatalf("place: %v", err)
	}
	lost := p.FailNode(1)
	if len(lost) != 1 || lost[0] != 1 {
		t.Errorf("lost = %v, want [1]", lost)
	}
	if p.NodeOf(1) != -1 {
		t.Error("lost job still placed")
	}
	if p.Latency(1) != -1 {
		t.Error("lost job latency should be -1")
	}
}

func TestJainIndex(t *testing.T) {
	if j := JainIndex([]float64{10, 10, 10}); math.Abs(j-1) > 1e-12 {
		t.Errorf("equal shares index = %v", j)
	}
	if j := JainIndex([]float64{30, 0, 0}); math.Abs(j-1.0/3) > 1e-12 {
		t.Errorf("hog index = %v, want 1/3", j)
	}
	if JainIndex(nil) != 0 || JainIndex([]float64{0, 0}) != 0 {
		t.Error("degenerate index should be 0")
	}
}

func TestFairnessIndexComparison(t *testing.T) {
	// Under contention, max-min fair allocation is fairer than FIFO.
	flows := []Flow{
		{ID: 1, Weight: 1, Demand: 80},
		{ID: 2, Weight: 1, Demand: 80},
		{ID: 3, Weight: 1, Demand: 80},
	}
	fifo := FIFO(100, flows)
	fair := MaxMinFair(100, flows)
	if JainIndex(fair) <= JainIndex(fifo) {
		t.Errorf("fair index %v not above FIFO %v", JainIndex(fair), JainIndex(fifo))
	}
	if math.Abs(JainIndex(fair)-1) > 1e-9 {
		t.Errorf("max-min on symmetric flows should be perfectly fair: %v", JainIndex(fair))
	}
}
