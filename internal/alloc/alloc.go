// Package alloc implements adaptive resource allocation (paper §IV.B):
// weighted max-min fair sharing with per-class isolation and admission
// control, so that no subset of IoBT devices — "including attackers" —
// can saturate shared communication or processing resources, plus a
// tier-aware placer that moves work among edge, core, and backend nodes.
package alloc

import (
	"sort"
)

// Class partitions flows by provenance for isolation purposes.
type Class int

// Flow classes. Authenticated mission traffic is isolated from
// unauthenticated commodity traffic; an attacker controlling gray nodes
// lands in ClassUntrusted and can only exhaust that class's share.
const (
	ClassMission Class = iota + 1
	ClassTelemetry
	ClassUntrusted
)

// Flow is one traffic or compute demand on a shared resource.
type Flow struct {
	ID     int
	Class  Class
	Weight float64
	Demand float64
}

// MaxMinFair computes the weighted max-min fair allocation of capacity
// to flows (progressive water-filling): no flow gets more than its
// demand, and unused share is redistributed by weight. The returned
// slice is indexed like flows.
func MaxMinFair(capacity float64, flows []Flow) []float64 {
	n := len(flows)
	out := make([]float64, n)
	if capacity <= 0 || n == 0 {
		return out
	}
	active := make([]int, 0, n)
	for i := range flows {
		if flows[i].Demand > 0 && flows[i].Weight > 0 {
			active = append(active, i)
		}
	}
	remaining := capacity
	for len(active) > 0 && remaining > 1e-12 {
		totalW := 0.0
		for _, i := range active {
			totalW += flows[i].Weight
		}
		// Fill level per unit weight this round.
		fill := remaining / totalW
		var still []int
		progressed := false
		for _, i := range active {
			share := fill * flows[i].Weight
			need := flows[i].Demand - out[i]
			if share >= need {
				out[i] += need
				remaining -= need
				progressed = true
			} else {
				still = append(still, i)
			}
		}
		if !progressed {
			// Everyone is unsatisfied: give the proportional share and stop.
			for _, i := range still {
				out[i] += fill * flows[i].Weight
			}
			remaining = 0
			break
		}
		active = still
	}
	return out
}

// FIFO allocates capacity in arrival order: each flow takes min(demand,
// whatever is left). It is the no-isolation baseline an attacker
// saturates trivially.
func FIFO(capacity float64, flows []Flow) []float64 {
	out := make([]float64, len(flows))
	left := capacity
	for i := range flows {
		if left <= 0 {
			break
		}
		take := flows[i].Demand
		if take > left {
			take = left
		}
		if take < 0 {
			take = 0
		}
		out[i] = take
		left -= take
	}
	return out
}

// ClassShares maps each class to its guaranteed capacity fraction.
// Fractions should sum to <= 1; unconfigured classes share the
// remainder equally.
type ClassShares map[Class]float64

// DefaultShares reserves most capacity for mission traffic.
func DefaultShares() ClassShares {
	return ClassShares{
		ClassMission:   0.6,
		ClassTelemetry: 0.25,
		ClassUntrusted: 0.15,
	}
}

// Isolated allocates capacity with per-class isolation: each class gets
// its configured share (unused share spills to other classes,
// mission-first), and flows within a class share max-min fairly. This is
// the defense experiment E9 measures.
func Isolated(capacity float64, flows []Flow, shares ClassShares) []float64 {
	out := make([]float64, len(flows))
	if capacity <= 0 || len(flows) == 0 {
		return out
	}
	byClass := map[Class][]int{}
	for i := range flows {
		byClass[flows[i].Class] = append(byClass[flows[i].Class], i)
	}
	classes := make([]Class, 0, len(byClass))
	for c := range byClass {
		classes = append(classes, c)
	}
	// Deterministic order: mission first (lowest class value first).
	sort.Slice(classes, func(i, j int) bool { return classes[i] < classes[j] })

	// First pass: per-class share, clipped to demand.
	demands := map[Class]float64{}
	for _, c := range classes {
		for _, i := range byClass[c] {
			demands[c] += flows[i].Demand
		}
	}
	classCap := map[Class]float64{}
	assigned := 0.0
	for _, c := range classes {
		quota := capacity * shares[c]
		if demands[c] < quota {
			quota = demands[c]
		}
		classCap[c] = quota
		assigned += quota
	}
	// Spill is everything unassigned — including the shares of classes
	// with no flows at all.
	spill := capacity - assigned
	if spill < 0 {
		spill = 0
	}
	// Spill unused share to still-hungry classes, priority order.
	for _, c := range classes {
		if spill <= 0 {
			break
		}
		hunger := demands[c] - classCap[c]
		if hunger <= 0 {
			continue
		}
		give := hunger
		if give > spill {
			give = spill
		}
		classCap[c] += give
		spill -= give
	}
	// Second pass: fair share within each class.
	for _, c := range classes {
		idx := byClass[c]
		sub := make([]Flow, len(idx))
		for k, i := range idx {
			sub[k] = flows[i]
		}
		alloc := MaxMinFair(classCap[c], sub)
		for k, i := range idx {
			out[i] = alloc[k]
		}
	}
	return out
}

// Admission enforces a per-flow rate cap before allocation: demands are
// clipped to limit, modeling per-source policing that blunts floods at
// the first hop.
func Admission(flows []Flow, limit float64) []Flow {
	out := make([]Flow, len(flows))
	copy(out, flows)
	if limit <= 0 {
		return out
	}
	for i := range out {
		if out[i].Demand > limit {
			out[i].Demand = limit
		}
	}
	return out
}

// Goodput sums the allocation received by flows of a class.
func Goodput(flows []Flow, alloc []float64, c Class) float64 {
	g := 0.0
	for i := range flows {
		if flows[i].Class == c && i < len(alloc) {
			g += alloc[i]
		}
	}
	return g
}

// JainIndex returns Jain's fairness index of an allocation: 1 when all
// flows get equal shares, approaching 1/n when one flow hogs everything.
func JainIndex(alloc []float64) float64 {
	if len(alloc) == 0 {
		return 0
	}
	var sum, sumSq float64
	for _, v := range alloc {
		sum += v
		sumSq += v * v
	}
	if sumSq == 0 {
		return 0
	}
	return sum * sum / (float64(len(alloc)) * sumSq)
}
