package alloc

import (
	"errors"
	"sort"
)

// Tier locates a compute node in the edge/core/backend hierarchy.
type Tier int

// Tiers, nearest (lowest latency) first.
const (
	TierEdge Tier = iota + 1
	TierCore
	TierBackend
)

// tierLatency is the per-tier access latency in milliseconds the placer
// optimizes against.
var tierLatency = map[Tier]float64{
	TierEdge:    5,
	TierCore:    25,
	TierBackend: 100,
}

// Node is one compute node available to the placer.
type Node struct {
	ID       int
	Tier     Tier
	Capacity float64
	used     float64
}

// Free returns remaining capacity.
func (n *Node) Free() float64 { return n.Capacity - n.used }

// Job is a unit of processing to place.
type Job struct {
	ID     int
	Demand float64
	// LatencySensitive jobs strongly prefer nearer tiers.
	LatencySensitive bool
}

// Placement maps job ID to node ID.
type Placement map[int]int

// ErrNoCapacity means the job set exceeds total capacity.
var ErrNoCapacity = errors.New("alloc: insufficient capacity for job set")

// Placer assigns jobs to tiered nodes, latency-sensitive jobs first and
// nearest-tier-first, falling back outward as tiers fill. It supports
// failure-driven replacement (paper: "dynamically reallocate
// heterogeneous resources at the edge, network core, and backend").
type Placer struct {
	nodes []*Node
	where Placement
	jobs  map[int]Job
}

// NewPlacer returns a placer over copies of the given nodes.
func NewPlacer(nodes []Node) *Placer {
	ns := make([]*Node, len(nodes))
	for i := range nodes {
		n := nodes[i]
		ns[i] = &n
	}
	return &Placer{nodes: ns, where: make(Placement), jobs: make(map[int]Job)}
}

// Place assigns every job, returning the placement or ErrNoCapacity.
// Already-placed jobs are retained.
func (p *Placer) Place(jobs []Job) (Placement, error) {
	ordered := make([]Job, len(jobs))
	copy(ordered, jobs)
	// Latency-sensitive first, then big jobs first (harder to fit).
	sort.Slice(ordered, func(i, j int) bool {
		if ordered[i].LatencySensitive != ordered[j].LatencySensitive {
			return ordered[i].LatencySensitive
		}
		if ordered[i].Demand != ordered[j].Demand {
			return ordered[i].Demand > ordered[j].Demand
		}
		return ordered[i].ID < ordered[j].ID
	})
	for _, j := range ordered {
		if _, ok := p.where[j.ID]; ok {
			continue
		}
		if !p.placeOne(j) {
			return nil, ErrNoCapacity
		}
	}
	out := make(Placement, len(p.where))
	for k, v := range p.where {
		out[k] = v
	}
	return out, nil
}

func (p *Placer) placeOne(j Job) bool {
	// Candidate nodes sorted by tier latency then free capacity.
	cands := make([]*Node, 0, len(p.nodes))
	for _, n := range p.nodes {
		if n.Free() >= j.Demand {
			cands = append(cands, n)
		}
	}
	if len(cands) == 0 {
		return false
	}
	sort.Slice(cands, func(a, b int) bool {
		la, lb := tierLatency[cands[a].Tier], tierLatency[cands[b].Tier]
		if la != lb {
			if j.LatencySensitive {
				return la < lb
			}
			return la > lb // batch work fills far tiers, keeping edge free
		}
		if cands[a].Free() != cands[b].Free() {
			return cands[a].Free() > cands[b].Free()
		}
		return cands[a].ID < cands[b].ID
	})
	n := cands[0]
	n.used += j.Demand
	p.where[j.ID] = n.ID
	p.jobs[j.ID] = j
	return true
}

// FailNode evicts a node and re-places its jobs elsewhere. It returns
// the IDs of jobs that could not be re-placed.
func (p *Placer) FailNode(nodeID int) []int {
	var displaced []Job
	for jid, nid := range p.where {
		if nid == nodeID {
			displaced = append(displaced, p.jobs[jid])
			delete(p.where, jid)
		}
	}
	for i := range p.nodes {
		if p.nodes[i].ID == nodeID {
			p.nodes[i].Capacity = 0
			p.nodes[i].used = 0
		}
	}
	sort.Slice(displaced, func(i, j int) bool { return displaced[i].ID < displaced[j].ID })
	var lost []int
	for _, j := range displaced {
		if !p.placeOne(j) {
			lost = append(lost, j.ID)
		}
	}
	return lost
}

// NodeOf returns the node a job is placed on, or -1.
func (p *Placer) NodeOf(jobID int) int {
	n, ok := p.where[jobID]
	if !ok {
		return -1
	}
	return n
}

// Latency returns the access latency (ms) of a job's current placement,
// or -1 if unplaced.
func (p *Placer) Latency(jobID int) float64 {
	nid, ok := p.where[jobID]
	if !ok {
		return -1
	}
	for _, n := range p.nodes {
		if n.ID == nid {
			return tierLatency[n.Tier]
		}
	}
	return -1
}
