package game

import (
	"strconv"

	"iobt/internal/sim"
)

// Decomposition is the paper's "hierarchical decomposition of global
// goals into objectives for distributed subordinate subsystems"
// (§IV): the commander partitions tasks into sectors, assigns each
// sector a proportional share of agents, and each sector runs its own
// independent game — subordinate initiative with an aggregate guarantee.
type Decomposition struct {
	// Sectors holds one subgame per sector.
	Sectors []*Game
}

// Decompose splits tasks into nSectors contiguous sectors and divides
// nAgents among them proportionally to sector value. Each subgame is
// independent: no cross-sector coordination is needed at runtime, which
// is the scalability win E5 measures.
func Decompose(tasks []Task, nAgents, nSectors int, rng *sim.RNG) *Decomposition {
	if nSectors < 1 {
		nSectors = 1
	}
	if nSectors > len(tasks) {
		nSectors = len(tasks)
	}
	d := &Decomposition{}
	if len(tasks) == 0 {
		return d
	}
	// Contiguous partition of the task list.
	per := (len(tasks) + nSectors - 1) / nSectors
	type sector struct {
		tasks []Task
		value float64
	}
	var sectors []sector
	total := 0.0
	for start := 0; start < len(tasks); start += per {
		end := start + per
		if end > len(tasks) {
			end = len(tasks)
		}
		sec := sector{tasks: tasks[start:end]}
		for _, t := range sec.tasks {
			sec.value += t.Value
		}
		total += sec.value
		sectors = append(sectors, sec)
	}
	// Proportional agent split (largest remainder would be fancier; a
	// simple floor + leftover-to-richest is adequate and deterministic).
	assigned := 0
	shares := make([]int, len(sectors))
	richest := 0
	for i, sec := range sectors {
		if total > 0 {
			shares[i] = int(float64(nAgents) * sec.value / total)
		}
		assigned += shares[i]
		if sec.value > sectors[richest].value {
			richest = i
		}
	}
	shares[richest] += nAgents - assigned
	for i, sec := range sectors {
		g := New(sec.tasks, shares[i], rng.Derive("sector"+strconv.Itoa(i)))
		g.Randomize()
		d.Sectors = append(d.Sectors, g)
	}
	return d
}

// Run plays every sector's best-response dynamics to convergence (or
// maxRounds). It returns the max rounds used by any sector and whether
// all converged.
func (d *Decomposition) Run(maxRounds int) (int, bool) {
	worst := 0
	all := true
	for _, g := range d.Sectors {
		r, ok := g.Run(maxRounds)
		if r > worst {
			worst = r
		}
		all = all && ok
	}
	return worst, all
}

// Welfare sums sector welfares.
func (d *Decomposition) Welfare() float64 {
	w := 0.0
	for _, g := range d.Sectors {
		w += g.Welfare()
	}
	return w
}

// Moves sums decision counts across sectors.
func (d *Decomposition) Moves() uint64 {
	var n uint64
	for _, g := range d.Sectors {
		n += g.Moves.Value()
	}
	return n
}
