package game

import "iobt/internal/sim"

// Matrix is a two-player zero-sum game: Payoff[i][j] is what the row
// player (maximizer, e.g. the blue communicator) receives when playing
// row i against column j (the adversary, e.g. the jammer). The paper's
// contested-environment games (§IV.A: "multi-level dynamic games that
// offer provable convergence guarantees") reduce to repeatedly solving
// such stage games.
type Matrix struct {
	Payoff [][]float64
}

// Rows returns the row player's action count.
func (m *Matrix) Rows() int { return len(m.Payoff) }

// Cols returns the column player's action count.
func (m *Matrix) Cols() int {
	if len(m.Payoff) == 0 {
		return 0
	}
	return len(m.Payoff[0])
}

// JammingGame builds the frequency-hopping stage game: the communicator
// picks one of n channels, the jammer jams one. Communication succeeds
// fully on an unjammed channel and is degraded by jamEffect on a jammed
// one. The unique equilibrium is uniform mixing by both sides with
// value 1 - jamEffect/n: more channels dilute the jammer.
func JammingGame(channels int, jamEffect float64) *Matrix {
	if channels < 1 {
		channels = 1
	}
	if jamEffect < 0 {
		jamEffect = 0
	}
	if jamEffect > 1 {
		jamEffect = 1
	}
	p := make([][]float64, channels)
	for i := range p {
		p[i] = make([]float64, channels)
		for j := range p[i] {
			if i == j {
				p[i][j] = 1 - jamEffect
			} else {
				p[i][j] = 1
			}
		}
	}
	return &Matrix{Payoff: p}
}

// FPResult is the outcome of fictitious play.
type FPResult struct {
	// RowMix and ColMix are the empirical mixed strategies.
	RowMix, ColMix []float64
	// Value is the empirical average payoff (converges to the game
	// value for zero-sum games).
	Value float64
	// Exploitability is the gap between the best responses to the two
	// empirical mixes: maxRow(vs ColMix) - minCol(vs RowMix). Zero at
	// the exact equilibrium; it upper-bounds how much either side could
	// gain by deviating.
	Exploitability float64
}

// FictitiousPlay runs simultaneous fictitious play for iters rounds:
// each player best-responds to the opponent's empirical mixture.
// Robinson's theorem guarantees convergence to equilibrium in zero-sum
// games — the provable-convergence guarantee the paper asks of its
// agent-interaction designs.
func FictitiousPlay(m *Matrix, iters int, rng *sim.RNG) *FPResult {
	rows, cols := m.Rows(), m.Cols()
	if rows == 0 || cols == 0 {
		return &FPResult{}
	}
	if iters <= 0 {
		iters = 1000
	}
	rowCount := make([]float64, rows)
	colCount := make([]float64, cols)
	// Start from random pure actions so ties don't bias to index 0.
	r := 0
	c := 0
	if rng != nil {
		r = rng.Intn(rows)
		c = rng.Intn(cols)
	}
	total := 0.0
	for it := 0; it < iters; it++ {
		rowCount[r]++
		colCount[c]++
		total += m.Payoff[r][c]
		// Row best-responds to the column empirical mix.
		r = argmaxRow(m, colCount)
		// Column best-responds (minimizes) to the row empirical mix.
		c = argminCol(m, rowCount)
	}
	res := &FPResult{
		RowMix: normalize(rowCount),
		ColMix: normalize(colCount),
		Value:  total / float64(iters),
	}
	// Exploitability against the empirical mixes.
	bestRow := rowPayoff(m, argmaxRowMix(m, res.ColMix), res.ColMix)
	bestCol := colPayoff(m, res.RowMix, argminColMix(m, res.RowMix))
	res.Exploitability = bestRow - bestCol
	return res
}

func argmaxRow(m *Matrix, colCount []float64) int {
	best, bestV := 0, -1e300
	for i := 0; i < m.Rows(); i++ {
		v := 0.0
		for j := range colCount {
			v += m.Payoff[i][j] * colCount[j]
		}
		if v > bestV {
			best, bestV = i, v
		}
	}
	return best
}

func argminCol(m *Matrix, rowCount []float64) int {
	best, bestV := 0, 1e300
	for j := 0; j < m.Cols(); j++ {
		v := 0.0
		for i := range rowCount {
			v += m.Payoff[i][j] * rowCount[i]
		}
		if v < bestV {
			best, bestV = j, v
		}
	}
	return best
}

func argmaxRowMix(m *Matrix, colMix []float64) int {
	best, bestV := 0, -1e300
	for i := 0; i < m.Rows(); i++ {
		if v := rowPayoff(m, i, colMix); v > bestV {
			best, bestV = i, v
		}
	}
	return best
}

func argminColMix(m *Matrix, rowMix []float64) int {
	best, bestV := 0, 1e300
	for j := 0; j < m.Cols(); j++ {
		if v := colPayoff(m, rowMix, j); v < bestV {
			best, bestV = j, v
		}
	}
	return best
}

func rowPayoff(m *Matrix, i int, colMix []float64) float64 {
	v := 0.0
	for j, p := range colMix {
		v += m.Payoff[i][j] * p
	}
	return v
}

func colPayoff(m *Matrix, rowMix []float64, j int) float64 {
	v := 0.0
	for i, p := range rowMix {
		v += m.Payoff[i][j] * p
	}
	return v
}

func normalize(v []float64) []float64 {
	sum := 0.0
	for _, x := range v {
		sum += x
	}
	out := make([]float64, len(v))
	if sum == 0 {
		return out
	}
	for i, x := range v {
		out[i] = x / sum
	}
	return out
}
