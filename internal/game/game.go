// Package game implements the paper's game-theoretic command-by-intent
// machinery (§IV.A "Operationalizing agent interactions"): global goals
// are encoded as per-agent objective functions such that selfish
// optimization provably converges to an equilibrium meeting the goal,
// with no explicit coordination — "the necessary distributed
// coordination and control between agents do not need to be explicitly
// designed".
//
// The concrete game is task allocation as a congestion game with shared
// rewards: agent utility for task m is Value(m)/n_m. This is a Rosenthal
// potential game, so best-response dynamics converge to a pure Nash
// equilibrium; the potential function is the analytic assurance on
// aggregate behavior the paper asks for.
package game

import (
	"math"

	"iobt/internal/sim"
)

// Task is one unit of mission work with a commander-assigned value.
type Task struct {
	// Value is the task's mission worth; shared equally by the agents
	// working it.
	Value float64
}

// Game is a task-allocation congestion game.
type Game struct {
	tasks  []Task
	choice []int // agent -> task index
	load   []int // task -> number of agents
	rng    *sim.RNG

	// Moves counts agent decisions taken (scalability metric: each is a
	// purely local computation).
	Moves sim.Counter
}

// New returns a game with nAgents agents initially assigned to task 0
// (an arbitrary legal start; call Randomize for a random start).
func New(tasks []Task, nAgents int, rng *sim.RNG) *Game {
	ts := make([]Task, len(tasks))
	copy(ts, tasks)
	g := &Game{
		tasks:  ts,
		choice: make([]int, nAgents),
		load:   make([]int, len(tasks)),
		rng:    rng,
	}
	if len(ts) > 0 {
		g.load[0] = nAgents
	}
	return g
}

// Randomize assigns every agent a uniform random task.
func (g *Game) Randomize() {
	for t := range g.load {
		g.load[t] = 0
	}
	for i := range g.choice {
		t := g.rng.Intn(len(g.tasks))
		g.choice[i] = t
		g.load[t]++
	}
}

// NumAgents returns the number of agents.
func (g *Game) NumAgents() int { return len(g.choice) }

// Choice returns agent i's current task.
func (g *Game) Choice(i int) int { return g.choice[i] }

// Load returns the number of agents on task t.
func (g *Game) Load(t int) int { return g.load[t] }

// Utility returns agent i's current payoff.
func (g *Game) Utility(i int) float64 {
	t := g.choice[i]
	return g.tasks[t].Value / float64(g.load[t])
}

// utilityIf returns i's payoff if it switched to task t.
func (g *Game) utilityIf(i, t int) float64 {
	if g.choice[i] == t {
		return g.Utility(i)
	}
	return g.tasks[t].Value / float64(g.load[t]+1)
}

// Potential returns Rosenthal's potential Φ = Σ_m Σ_{k=1..n_m} V_m/k.
// Every unilateral improving move strictly increases Φ, which is the
// convergence guarantee.
func (g *Game) Potential() float64 {
	phi := 0.0
	for t, n := range g.load {
		for k := 1; k <= n; k++ {
			phi += g.tasks[t].Value / float64(k)
		}
	}
	return phi
}

// Welfare returns the total mission value achieved: the summed value of
// tasks with at least one agent (shared rewards make total agent utility
// equal covered value).
func (g *Game) Welfare() float64 {
	w := 0.0
	for t, n := range g.load {
		if n > 0 {
			w += g.tasks[t].Value
		}
	}
	return w
}

// bestResponse moves agent i to its best task. It returns true if the
// agent switched.
func (g *Game) bestResponse(i int) bool {
	g.Moves.Inc()
	cur := g.choice[i]
	best, bestU := cur, g.Utility(i)
	for t := range g.tasks {
		if u := g.utilityIf(i, t); u > bestU+1e-12 {
			best, bestU = t, u
		}
	}
	if best == cur {
		return false
	}
	g.load[cur]--
	g.load[best]++
	g.choice[i] = best
	return true
}

// Round lets every agent best-respond once, in random order (asynchronous
// play). It returns the number of agents that switched.
func (g *Game) Round() int {
	switched := 0
	for _, i := range g.rng.Perm(len(g.choice)) {
		if g.bestResponse(i) {
			switched++
		}
	}
	return switched
}

// Run plays rounds until no agent switches or maxRounds is hit. It
// returns the rounds used and whether a pure Nash equilibrium was
// reached.
func (g *Game) Run(maxRounds int) (int, bool) {
	for r := 1; r <= maxRounds; r++ {
		if g.Round() == 0 {
			return r, true
		}
	}
	return maxRounds, false
}

// IsEquilibrium verifies no agent has a profitable unilateral deviation.
func (g *Game) IsEquilibrium() bool {
	for i := range g.choice {
		u := g.Utility(i)
		for t := range g.tasks {
			if g.utilityIf(i, t) > u+1e-12 {
				return false
			}
		}
	}
	return true
}

// LogLinearRound performs one round of log-linear learning: each agent,
// in random order, switches to a task drawn from the softmax of its
// utilities at temperature temp. As temp -> 0 this concentrates on the
// potential maximizer, escaping bad equilibria.
func (g *Game) LogLinearRound(temp float64) {
	if temp <= 0 {
		g.Round()
		return
	}
	for _, i := range g.rng.Perm(len(g.choice)) {
		g.Moves.Inc()
		// Softmax over utilities-if.
		weights := make([]float64, len(g.tasks))
		maxU := 0.0
		for t := range g.tasks {
			u := g.utilityIf(i, t) / temp
			weights[t] = u
			if t == 0 || u > maxU {
				maxU = u
			}
		}
		sum := 0.0
		for t := range weights {
			weights[t] = expFast(weights[t] - maxU)
			sum += weights[t]
		}
		r := g.rng.Float64() * sum
		chosen := len(weights) - 1
		acc := 0.0
		for t, w := range weights {
			acc += w
			if r <= acc {
				chosen = t
				break
			}
		}
		cur := g.choice[i]
		if chosen != cur {
			g.load[cur]--
			g.load[chosen]++
			g.choice[i] = chosen
		}
	}
}

func expFast(x float64) float64 {
	// Clamp to avoid overflow; math.Exp handles the rest.
	if x < -700 {
		return 0
	}
	if x > 700 {
		x = 700
	}
	return math.Exp(x)
}

// OptimalWelfare returns the centralized optimum: with n agents and
// shared rewards, cover the n most valuable tasks (one agent each covers
// a task; extra agents add no welfare).
func OptimalWelfare(tasks []Task, nAgents int) float64 {
	vals := make([]float64, len(tasks))
	for i, t := range tasks {
		vals[i] = t.Value
	}
	// Partial selection of top-n values.
	sortDesc(vals)
	w := 0.0
	for i := 0; i < len(vals) && i < nAgents; i++ {
		w += vals[i]
	}
	return w
}
