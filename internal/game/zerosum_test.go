package game

import (
	"math"
	"testing"

	"iobt/internal/sim"
)

func TestJammingGameStructure(t *testing.T) {
	m := JammingGame(4, 0.8)
	if m.Rows() != 4 || m.Cols() != 4 {
		t.Fatalf("shape = %dx%d", m.Rows(), m.Cols())
	}
	if math.Abs(m.Payoff[2][2]-0.2) > 1e-12 || m.Payoff[1][3] != 1 {
		t.Errorf("payoffs wrong: %v", m.Payoff)
	}
	clamped := JammingGame(0, 2)
	if clamped.Rows() != 1 || clamped.Payoff[0][0] != 0 {
		t.Errorf("clamping wrong: %+v", clamped)
	}
}

func TestFictitiousPlayJammingEquilibrium(t *testing.T) {
	const n = 5
	const jam = 1.0
	m := JammingGame(n, jam)
	res := FictitiousPlay(m, 20000, sim.NewRNG(1))
	wantValue := 1 - jam/float64(n)
	if math.Abs(res.Value-wantValue) > 0.02 {
		t.Errorf("value = %.3f, want ~%.3f", res.Value, wantValue)
	}
	// Both mixes approach uniform 1/n.
	for i, p := range res.RowMix {
		if math.Abs(p-1.0/n) > 0.05 {
			t.Errorf("row mix[%d] = %.3f, want ~%.3f", i, p, 1.0/n)
		}
	}
	for j, p := range res.ColMix {
		if math.Abs(p-1.0/n) > 0.05 {
			t.Errorf("col mix[%d] = %.3f, want ~%.3f", j, p, 1.0/n)
		}
	}
	if res.Exploitability > 0.05 {
		t.Errorf("exploitability = %.3f, want near 0", res.Exploitability)
	}
}

func TestMoreChannelsDiluteJammer(t *testing.T) {
	rng := sim.NewRNG(2)
	v3 := FictitiousPlay(JammingGame(3, 1), 5000, rng).Value
	v10 := FictitiousPlay(JammingGame(10, 1), 5000, rng).Value
	if v10 <= v3 {
		t.Errorf("value with 10 channels (%.3f) not above 3 channels (%.3f)", v10, v3)
	}
}

func TestFictitiousPlayMatchingPennies(t *testing.T) {
	// Classic: value 0, uniform mixes.
	m := &Matrix{Payoff: [][]float64{{1, -1}, {-1, 1}}}
	res := FictitiousPlay(m, 20000, sim.NewRNG(3))
	if math.Abs(res.Value) > 0.02 {
		t.Errorf("matching pennies value = %.3f, want ~0", res.Value)
	}
	if math.Abs(res.RowMix[0]-0.5) > 0.05 {
		t.Errorf("row mix = %v, want ~uniform", res.RowMix)
	}
}

func TestFictitiousPlayDominantStrategy(t *testing.T) {
	// Row 1 dominates row 0; column 0 dominates column 1 (for the
	// minimizer). Equilibrium: (1, 0) with value 2.
	m := &Matrix{Payoff: [][]float64{{1, 3}, {2, 4}}}
	res := FictitiousPlay(m, 5000, sim.NewRNG(4))
	if res.RowMix[1] < 0.95 {
		t.Errorf("row should settle on dominant action: %v", res.RowMix)
	}
	if res.ColMix[0] < 0.95 {
		t.Errorf("col should settle on dominant action: %v", res.ColMix)
	}
	if math.Abs(res.Value-2) > 0.05 {
		t.Errorf("value = %.3f, want 2", res.Value)
	}
}

func TestFictitiousPlayEdges(t *testing.T) {
	if res := FictitiousPlay(&Matrix{}, 100, nil); len(res.RowMix) != 0 {
		t.Error("empty game should return empty result")
	}
	// nil RNG and zero iters default safely.
	m := JammingGame(2, 0.5)
	res := FictitiousPlay(m, 0, nil)
	if len(res.RowMix) != 2 {
		t.Error("defaults failed")
	}
}
