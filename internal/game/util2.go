package game

import "sort"

func sortDesc(v []float64) {
	sort.Sort(sort.Reverse(sort.Float64Slice(v)))
}
