package game

import (
	"math"
	"testing"
	"testing/quick"

	"iobt/internal/sim"
)

func uniformTasks(n int, value float64) []Task {
	ts := make([]Task, n)
	for i := range ts {
		ts[i] = Task{Value: value}
	}
	return ts
}

func rampTasks(n int) []Task {
	ts := make([]Task, n)
	for i := range ts {
		ts[i] = Task{Value: float64(i + 1)}
	}
	return ts
}

func TestBestResponseConverges(t *testing.T) {
	g := New(rampTasks(20), 50, sim.NewRNG(1))
	g.Randomize()
	rounds, ok := g.Run(1000)
	if !ok {
		t.Fatal("did not converge")
	}
	if !g.IsEquilibrium() {
		t.Fatal("converged state is not a Nash equilibrium")
	}
	t.Logf("converged in %d rounds", rounds)
}

func TestPotentialMonotoneUnderBestResponse(t *testing.T) {
	g := New(rampTasks(15), 40, sim.NewRNG(2))
	g.Randomize()
	prev := g.Potential()
	for r := 0; r < 50; r++ {
		switched := g.Round()
		cur := g.Potential()
		if cur < prev-1e-9 {
			t.Fatalf("potential decreased: %v -> %v", prev, cur)
		}
		prev = cur
		if switched == 0 {
			break
		}
	}
}

func TestEquilibriumSpreadsAgents(t *testing.T) {
	// Equal-value tasks with as many agents as tasks: equilibrium is one
	// agent per task (any doubling leaves an empty task worth more).
	g := New(uniformTasks(10, 5), 10, sim.NewRNG(3))
	g.Randomize()
	if _, ok := g.Run(1000); !ok {
		t.Fatal("did not converge")
	}
	for task := 0; task < 10; task++ {
		if g.Load(task) != 1 {
			t.Fatalf("load(%d) = %d, want 1 (perfect spread)", task, g.Load(task))
		}
	}
	if g.Welfare() != 50 {
		t.Errorf("welfare = %v, want 50", g.Welfare())
	}
}

func TestWelfareNearOptimal(t *testing.T) {
	tasks := rampTasks(30)
	g := New(tasks, 20, sim.NewRNG(4))
	g.Randomize()
	if _, ok := g.Run(1000); !ok {
		t.Fatal("did not converge")
	}
	opt := OptimalWelfare(tasks, 20)
	if g.Welfare() < opt/2 {
		t.Errorf("welfare %v below PoA bound opt/2 = %v", g.Welfare(), opt/2)
	}
}

func TestOptimalWelfare(t *testing.T) {
	tasks := []Task{{Value: 5}, {Value: 1}, {Value: 9}}
	if got := OptimalWelfare(tasks, 2); got != 14 {
		t.Errorf("OptimalWelfare = %v, want 14", got)
	}
	if got := OptimalWelfare(tasks, 10); got != 15 {
		t.Errorf("OptimalWelfare with surplus agents = %v, want 15", got)
	}
	if got := OptimalWelfare(nil, 3); got != 0 {
		t.Errorf("OptimalWelfare(nil) = %v", got)
	}
}

func TestUtilitySharing(t *testing.T) {
	g := New([]Task{{Value: 12}}, 3, sim.NewRNG(5))
	// All on task 0.
	for i := 0; i < 3; i++ {
		if u := g.Utility(i); u != 4 {
			t.Errorf("utility = %v, want 12/3", u)
		}
	}
}

func TestLogLinearEscapesAndConcentrates(t *testing.T) {
	tasks := rampTasks(10)
	g := New(tasks, 10, sim.NewRNG(6))
	// All start on task 0 (value 1) — a terrible configuration.
	for r := 0; r < 100; r++ {
		g.LogLinearRound(0.2)
	}
	if g.Welfare() < OptimalWelfare(tasks, 10)*0.5 {
		t.Errorf("log-linear welfare = %v after 100 rounds", g.Welfare())
	}
	// Zero temperature degrades to best response.
	g2 := New(tasks, 5, sim.NewRNG(7))
	g2.Randomize()
	g2.LogLinearRound(0)
	// No assertion beyond "did not panic and stayed consistent":
	checkConsistent(t, g2)
}

func checkConsistent(t *testing.T, g *Game) {
	t.Helper()
	counts := make([]int, len(g.tasks))
	for i := range g.choice {
		counts[g.choice[i]]++
	}
	for task := range counts {
		if counts[task] != g.Load(task) {
			t.Fatalf("load bookkeeping broken at task %d: %d vs %d", task, counts[task], g.Load(task))
		}
	}
}

// Property: load bookkeeping stays consistent and potential never
// decreases across best-response rounds, for random instances.
func TestGameInvariants(t *testing.T) {
	prop := func(seed int64, nTasksRaw, nAgentsRaw uint8) bool {
		nTasks := int(nTasksRaw%20) + 1
		nAgents := int(nAgentsRaw%50) + 1
		rng := sim.NewRNG(seed)
		tasks := make([]Task, nTasks)
		for i := range tasks {
			tasks[i] = Task{Value: rng.Uniform(0.1, 10)}
		}
		g := New(tasks, nAgents, rng.Derive("game"))
		g.Randomize()
		prev := g.Potential()
		for r := 0; r < 30; r++ {
			s := g.Round()
			cur := g.Potential()
			if cur < prev-1e-9 {
				return false
			}
			prev = cur
			// Consistency.
			total := 0
			for task := 0; task < nTasks; task++ {
				if g.Load(task) < 0 {
					return false
				}
				total += g.Load(task)
			}
			if total != nAgents {
				return false
			}
			if s == 0 {
				return g.IsEquilibrium()
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

func TestDecomposeWelfareAndScaling(t *testing.T) {
	rng := sim.NewRNG(8)
	tasks := rampTasks(60)
	nAgents := 60

	flat := New(tasks, nAgents, rng.Derive("flat"))
	flat.Randomize()
	if _, ok := flat.Run(2000); !ok {
		t.Fatal("flat game did not converge")
	}

	d := Decompose(tasks, nAgents, 6, rng)
	if _, ok := d.Run(2000); !ok {
		t.Fatal("decomposed games did not converge")
	}

	// Decomposition must stay within a modest factor of the flat welfare.
	if d.Welfare() < 0.8*flat.Welfare() {
		t.Errorf("decomposed welfare %v << flat %v", d.Welfare(), flat.Welfare())
	}
	if len(d.Sectors) != 6 {
		t.Errorf("sectors = %d", len(d.Sectors))
	}
	// Agents conserved.
	total := 0
	for _, g := range d.Sectors {
		total += g.NumAgents()
	}
	if total != nAgents {
		t.Errorf("agents across sectors = %d, want %d", total, nAgents)
	}
	if d.Moves() == 0 {
		t.Error("no moves recorded")
	}
}

func TestDecomposeEdgeCases(t *testing.T) {
	rng := sim.NewRNG(9)
	d := Decompose(nil, 10, 3, rng)
	if len(d.Sectors) != 0 {
		t.Error("empty task list should produce no sectors")
	}
	if d.Welfare() != 0 {
		t.Error("empty decomposition welfare should be 0")
	}
	d2 := Decompose(rampTasks(2), 10, 5, rng)
	if len(d2.Sectors) > 2 {
		t.Errorf("more sectors than tasks: %d", len(d2.Sectors))
	}
	d3 := Decompose(rampTasks(4), 0, 2, rng)
	if _, ok := d3.Run(10); !ok {
		t.Error("zero-agent decomposition should trivially converge")
	}
}

func TestMovesCounting(t *testing.T) {
	g := New(rampTasks(5), 10, sim.NewRNG(10))
	g.Randomize()
	g.Round()
	if g.Moves.Value() != 10 {
		t.Errorf("moves after one round = %d, want 10", g.Moves.Value())
	}
}

func TestConvergenceScalesGently(t *testing.T) {
	// Rounds to converge should grow sublinearly with N (each round is
	// parallel local work) — the paper's scalability claim.
	rounds := func(n int) int {
		g := New(rampTasks(n), n, sim.NewRNG(11))
		g.Randomize()
		r, ok := g.Run(10000)
		if !ok {
			t.Fatalf("no convergence at n=%d", n)
		}
		return r
	}
	r100 := rounds(100)
	r1000 := rounds(1000)
	if r1000 > r100*10 {
		t.Errorf("rounds grew superlinearly: %d -> %d", r100, r1000)
	}
	if math.IsNaN(float64(r1000)) {
		t.Fatal("unreachable")
	}
}
