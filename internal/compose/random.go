package compose

import (
	"iobt/internal/sim"
)

// RandomSolver is the uninformed baseline: it draws random subsets of a
// target size and returns the first feasible one, growing the size when
// attempts fail. Experiment E2 uses it to show that the search space is
// far too large for undirected sampling.
type RandomSolver struct {
	RNG *sim.RNG
	// Attempts per size before growing; zero defaults to 30.
	Attempts int
	// StartSize is the initial subset size; zero defaults to 8.
	StartSize int
	// MaxSize caps subset growth; zero defaults to min(len(pool), 512).
	MaxSize int
}

var _ Solver = (*RandomSolver)(nil)

// Solve implements Solver.
func (s RandomSolver) Solve(req Requirements, pool []Candidate) (*Composite, error) {
	rng := s.RNG
	if rng == nil {
		rng = sim.NewRNG(1)
	}
	attempts := s.Attempts
	if attempts <= 0 {
		attempts = 30
	}
	eligible := filterEligible(req, pool)
	if len(eligible) == 0 {
		return nil, ErrInfeasible
	}
	size := s.StartSize
	if size <= 0 {
		size = 8
	}
	maxSize := s.MaxSize
	if maxSize <= 0 {
		maxSize = len(eligible)
		if maxSize > 512 {
			maxSize = 512
		}
	}
	if req.Goal.MaxMembers > 0 && req.Goal.MaxMembers < maxSize {
		maxSize = req.Goal.MaxMembers
	}

	var best *Composite
	bestCover := -1.0
	for ; size <= maxSize; size = grow(size) {
		if size > len(eligible) {
			size = len(eligible)
		}
		for t := 0; t < attempts; t++ {
			perm := rng.Perm(len(eligible))
			members := make([]Candidate, 0, size)
			for _, idx := range perm[:size] {
				members = append(members, eligible[idx])
			}
			a := Evaluate(req, members)
			if a.Feasible {
				return &Composite{Members: ids(members), Assurance: a}, nil
			}
			if a.CoverageFrac > bestCover {
				bestCover = a.CoverageFrac
				best = &Composite{Members: ids(members), Assurance: a}
			}
		}
		if size == len(eligible) {
			break
		}
	}
	if best != nil {
		return best, ErrInfeasible
	}
	return nil, ErrInfeasible
}

func grow(size int) int {
	next := size * 3 / 2
	if next <= size {
		next = size + 1
	}
	return next
}
