package compose

import (
	"sort"

	"iobt/internal/asset"
)

// GreedySolver composes by marginal-gain selection: repeatedly add the
// candidate that covers the most still-uncovered cells, then top up
// compute/bandwidth, then repair connectivity by adding bridge relays.
// Max-coverage greedy carries the classic (1-1/e) approximation
// guarantee, which is the "assured synthesis" story at scale.
type GreedySolver struct{}

var _ Solver = (*GreedySolver)(nil)

// Solve implements Solver.
func (GreedySolver) Solve(req Requirements, pool []Candidate) (*Composite, error) {
	g := req.Goal
	eligible := filterEligible(req, pool)
	if len(eligible) == 0 {
		return nil, ErrInfeasible
	}

	// Precompute cell coverage lists per candidate.
	coverLists := make([][]int, len(eligible))
	for i := range eligible {
		for ci, cell := range req.Cells {
			if eligible[i].covers(g, cell) {
				coverLists[i] = append(coverLists[i], ci)
			}
		}
	}

	chosen := make([]bool, len(eligible))
	cellHits := make([]int, len(req.Cells))
	satisfied := 0
	var members []Candidate

	pick := func(i int) {
		chosen[i] = true
		members = append(members, eligible[i])
		for _, ci := range coverLists[i] {
			cellHits[ci]++
			if cellHits[ci] == req.CellNeed {
				satisfied++
			}
		}
	}

	// Phase 1: max coverage.
	for satisfied < req.NeedCells {
		best, bestGain := -1, 0
		for i := range eligible {
			if chosen[i] {
				continue
			}
			gain := 0
			for _, ci := range coverLists[i] {
				if cellHits[ci] < req.CellNeed {
					gain++
				}
			}
			if gain > bestGain {
				best, bestGain = i, gain
			}
		}
		if best < 0 {
			break // no candidate adds coverage; resources may still pass
		}
		pick(best)
		if g.MaxMembers > 0 && len(members) >= g.MaxMembers {
			break
		}
	}

	// Phase 2: resource top-up (compute then bandwidth), richest first.
	members = topUpResources(req, eligible, chosen, members, pick)

	// Phase 3: connectivity repair.
	members = repairConnectivity(eligible, chosen, members, pick)

	a := Evaluate(req, members)
	comp := &Composite{Members: ids(members), Assurance: a}
	if !a.Feasible {
		return comp, ErrInfeasible
	}
	return comp, nil
}

// filterEligible drops candidates below the trust floor.
func filterEligible(req Requirements, pool []Candidate) []Candidate {
	g := req.Goal
	out := make([]Candidate, 0, len(pool))
	for _, c := range pool {
		if c.Trust < g.MinTrust {
			continue
		}
		out = append(out, c)
	}
	return out
}

// topUpResources adds candidates until compute and bandwidth demands are
// met (or the pool is exhausted).
func topUpResources(req Requirements, eligible []Candidate, chosen []bool, members []Candidate, pick func(int)) []Candidate {
	g := req.Goal
	var compute, bandwidth float64
	for i := range members {
		compute += members[i].Caps.Compute
		bandwidth += members[i].Caps.Bandwidth
	}
	if compute >= g.Compute && bandwidth >= g.Bandwidth {
		return members
	}
	order := make([]int, 0, len(eligible))
	for i := range eligible {
		if !chosen[i] {
			order = append(order, i)
		}
	}
	sort.Slice(order, func(a, b int) bool {
		ca := eligible[order[a]].Caps.Compute + eligible[order[a]].Caps.Bandwidth
		cb := eligible[order[b]].Caps.Compute + eligible[order[b]].Caps.Bandwidth
		if ca != cb {
			return ca > cb
		}
		return eligible[order[a]].ID < eligible[order[b]].ID
	})
	picked := len(members)
	for _, i := range order {
		if compute >= g.Compute && bandwidth >= g.Bandwidth {
			break
		}
		if g.MaxMembers > 0 && picked >= g.MaxMembers {
			break
		}
		pick(i)
		picked++
		compute += eligible[i].Caps.Compute
		bandwidth += eligible[i].Caps.Bandwidth
	}
	return membersFrom(eligible, chosen)
}

// repairConnectivity adds unchosen candidates that bridge disconnected
// components of the composite's radio graph, nearest-bridge first, until
// connected or no bridge exists.
func repairConnectivity(eligible []Candidate, chosen []bool, members []Candidate, pick func(int)) []Candidate {
	for iter := 0; iter < len(eligible); iter++ {
		members = membersFrom(eligible, chosen)
		if len(members) <= 1 {
			return members
		}
		comp := componentLabels(members)
		nComp := 0
		for _, c := range comp {
			if c+1 > nComp {
				nComp = c + 1
			}
		}
		if nComp <= 1 {
			return members
		}
		// Find the unchosen candidate that, if added, links at least two
		// distinct components, preferring the one linking the most.
		best, bestLinks := -1, 1
		// Fallback: a candidate linked to one component that moves
		// closest toward a different component (multi-node bridges are
		// built one stepping stone at a time).
		step, stepDist := -1, 0.0
		for i := range eligible {
			if chosen[i] {
				continue
			}
			linked := map[int]bool{}
			for m := range members {
				r := minRange(eligible[i], members[m])
				if eligible[i].Pos.Dist(members[m].Pos) <= r {
					linked[comp[m]] = true
				}
			}
			if len(linked) > bestLinks {
				best, bestLinks = i, len(linked)
			}
			if len(linked) == 1 {
				// Distance from this candidate to the nearest member of
				// a component it is NOT linked to.
				d := -1.0
				for m := range members {
					if linked[comp[m]] {
						continue
					}
					if dd := eligible[i].Pos.Dist(members[m].Pos); d < 0 || dd < d {
						d = dd
					}
				}
				if d >= 0 && (step < 0 || d < stepDist) {
					step, stepDist = i, d
				}
			}
		}
		if best < 0 {
			best = step
		}
		if best < 0 {
			return members // no bridge exists; Evaluate will flag it
		}
		pick(best)
	}
	return membersFrom(eligible, chosen)
}

func minRange(a, b Candidate) float64 {
	r := a.Caps.RadioRange
	if b.Caps.RadioRange < r {
		r = b.Caps.RadioRange
	}
	return r
}

// componentLabels labels each member with its connected-component index.
func componentLabels(members []Candidate) []int {
	n := len(members)
	adj := buildAdjacency(members)
	label := make([]int, n)
	for i := range label {
		label[i] = -1
	}
	next := 0
	for i := 0; i < n; i++ {
		if label[i] >= 0 {
			continue
		}
		stack := []int{i}
		label[i] = next
		for len(stack) > 0 {
			u := stack[len(stack)-1]
			stack = stack[:len(stack)-1]
			for _, v := range adj[u] {
				if label[v] < 0 {
					label[v] = next
					stack = append(stack, v)
				}
			}
		}
		next++
	}
	return label
}

func membersFrom(eligible []Candidate, chosen []bool) []Candidate {
	var out []Candidate
	for i, ok := range chosen {
		if ok {
			out = append(out, eligible[i])
		}
	}
	return out
}

func ids(members []Candidate) []asset.ID {
	out := make([]asset.ID, len(members))
	for i := range members {
		out[i] = members[i].ID
	}
	return out
}
