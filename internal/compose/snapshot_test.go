package compose

import (
	"testing"

	"iobt/internal/asset"
	"iobt/internal/checkpoint"
)

func TestCompositeEncodeDecodeRoundTrip(t *testing.T) {
	c := &Composite{Members: []asset.ID{4, 1, 9}}
	c.Assurance.CoverageFrac = 0.82
	c.Assurance.Connected = true
	c.Assurance.MeanTrust = 0.71
	c.Assurance.RiskFrac = 0.05
	c.Assurance.Feasible = true

	e := checkpoint.NewEncoder()
	EncodeComposite(e, c)
	got := DecodeComposite(checkpoint.NewDecoder(e.Bytes()))
	if got == nil {
		t.Fatal("decoded nil for non-nil composite")
	}
	if len(got.Members) != 3 || got.Members[0] != 4 || got.Members[1] != 1 || got.Members[2] != 9 {
		t.Errorf("members = %v, want [4 1 9]", got.Members)
	}
	if got.Assurance.CoverageFrac != c.Assurance.CoverageFrac ||
		got.Assurance.Connected != c.Assurance.Connected ||
		got.Assurance.MeanTrust != c.Assurance.MeanTrust ||
		got.Assurance.RiskFrac != c.Assurance.RiskFrac ||
		got.Assurance.Feasible != c.Assurance.Feasible {
		t.Errorf("assurance = %+v, want %+v", got.Assurance, c.Assurance)
	}
}

func TestCompositeEncodeNil(t *testing.T) {
	e := checkpoint.NewEncoder()
	EncodeComposite(e, nil)
	if got := DecodeComposite(checkpoint.NewDecoder(e.Bytes())); got != nil {
		t.Errorf("decoded %+v for nil marker, want nil", got)
	}
}
