package compose

import (
	"math"

	"iobt/internal/sim"
)

// AnnealSolver is the optimization-theoretic composer the paper names
// alongside constraint satisfaction (§III.B, ref [11]): simulated
// annealing over member subsets, warm-started from the greedy solution,
// minimizing composite size subject to feasibility penalties. It trades
// extra wall-clock for leaner composites — the ablation experiment
// measures exactly that trade.
type AnnealSolver struct {
	// RNG drives the Metropolis chain; nil defaults to a fixed seed.
	RNG *sim.RNG
	// Steps is the chain length; zero defaults to 4000.
	Steps int
	// StartTemp and CoolRate shape the geometric schedule; zero values
	// default to 5.0 and 0.999.
	StartTemp float64
	CoolRate  float64
}

var _ Solver = (*AnnealSolver)(nil)

// Solve implements Solver.
func (s AnnealSolver) Solve(req Requirements, pool []Candidate) (*Composite, error) {
	rng := s.RNG
	if rng == nil {
		rng = sim.NewRNG(1)
	}
	steps := s.Steps
	if steps <= 0 {
		steps = 4000
	}
	temp := s.StartTemp
	if temp <= 0 {
		temp = 5
	}
	cool := s.CoolRate
	if cool <= 0 || cool >= 1 {
		cool = 0.999
	}
	eligible := filterEligible(req, pool)
	if len(eligible) == 0 {
		return nil, ErrInfeasible
	}

	// Warm start from greedy (ignore its feasibility verdict; annealing
	// may still fix or shrink it).
	warm, _ := GreedySolver{}.Solve(req, pool)
	inWarm := map[int64]bool{}
	if warm != nil {
		for _, id := range warm.Members {
			inWarm[int64(id)] = true
		}
	}

	st := newAnnealState(req, eligible)
	for i := range eligible {
		if inWarm[int64(eligible[i].ID)] {
			st.flip(i)
		}
	}

	best := st.snapshot()
	bestE := st.energy()
	curE := bestE
	for step := 0; step < steps; step++ {
		i := rng.Intn(len(eligible))
		st.flip(i)
		newE := st.energy()
		delta := newE - curE
		if delta <= 0 || rng.Bool(math.Exp(-delta/temp)) {
			curE = newE
			if newE < bestE {
				bestE = newE
				best = st.snapshot()
			}
		} else {
			st.flip(i) // reject: undo
		}
		temp *= cool
	}

	members := make([]Candidate, 0, len(best))
	for _, i := range best {
		members = append(members, eligible[i])
	}
	// Post-pass: connectivity repair (annealing's energy doesn't model
	// the radio graph; reuse the greedy bridge builder).
	chosen := make([]bool, len(eligible))
	for _, i := range best {
		chosen[i] = true
	}
	members = repairConnectivity(eligible, chosen, members, func(i int) {
		chosen[i] = true
		members = append(members, eligible[i])
	})

	a := Evaluate(req, members)
	comp := &Composite{Members: ids(members), Assurance: a}
	if !a.Feasible {
		// The energy function is a proxy (coverage + resources); it does
		// not model the radio graph, latency, or risk, so the chain can
		// drift to a lower-energy subset the full evaluation rejects.
		// Never do worse than the warm start: keep the greedy composite
		// when it was feasible.
		if warm != nil && warm.Assurance.Feasible {
			return warm, nil
		}
		return comp, ErrInfeasible
	}
	return comp, nil
}

// annealState tracks subset membership with incremental feasibility
// accounting so each flip is O(candidate's cover list).
type annealState struct {
	req        Requirements
	eligible   []Candidate
	coverLists [][]int
	in         []bool
	cellHits   []int
	satisfied  int
	members    int
	compute    float64
	bandwidth  float64
}

func newAnnealState(req Requirements, eligible []Candidate) *annealState {
	st := &annealState{
		req:      req,
		eligible: eligible,
		in:       make([]bool, len(eligible)),
		cellHits: make([]int, len(req.Cells)),
	}
	st.coverLists = make([][]int, len(eligible))
	for i := range eligible {
		for ci, cell := range req.Cells {
			if eligible[i].covers(req.Goal, cell) {
				st.coverLists[i] = append(st.coverLists[i], ci)
			}
		}
	}
	return st
}

func (st *annealState) flip(i int) {
	if st.in[i] {
		st.in[i] = false
		st.members--
		st.compute -= st.eligible[i].Caps.Compute
		st.bandwidth -= st.eligible[i].Caps.Bandwidth
		for _, ci := range st.coverLists[i] {
			if st.cellHits[ci] == st.req.CellNeed {
				st.satisfied--
			}
			st.cellHits[ci]--
		}
		return
	}
	st.in[i] = true
	st.members++
	st.compute += st.eligible[i].Caps.Compute
	st.bandwidth += st.eligible[i].Caps.Bandwidth
	for _, ci := range st.coverLists[i] {
		st.cellHits[ci]++
		if st.cellHits[ci] == st.req.CellNeed {
			st.satisfied++
		}
	}
}

// energy penalizes infeasibility heavily and size lightly, so the chain
// first restores feasibility and then shrinks the composite.
func (st *annealState) energy() float64 {
	g := st.req.Goal
	e := float64(st.members)
	if deficit := st.req.NeedCells - st.satisfied; deficit > 0 {
		e += 50 * float64(deficit)
	}
	if g.Compute > 0 && st.compute < g.Compute {
		e += 0.05 * (g.Compute - st.compute)
	}
	if g.Bandwidth > 0 && st.bandwidth < g.Bandwidth {
		e += 0.05 * (g.Bandwidth - st.bandwidth)
	}
	if g.MaxMembers > 0 && st.members > g.MaxMembers {
		e += 50 * float64(st.members-g.MaxMembers)
	}
	return e
}

func (st *annealState) snapshot() []int {
	out := make([]int, 0, st.members)
	for i, ok := range st.in {
		if ok {
			out = append(out, i)
		}
	}
	return out
}
