package compose

import "sort"

// CSPSolver finds a minimum-cardinality feasible composite by iterative
// deepening over subset size with constraint propagation (remaining
// coverage bound pruning). It is exact but exponential, so it carries a
// node budget: when the budget is exhausted it returns the best feasible
// composite found so far, or ErrInfeasible.
//
// The paper (§III.B "Scalability") names constraint satisfaction as one
// formalism and observes the search space is "very large because of the
// heterogeneity of sensors, actuators and compute elements"; experiment
// E2 measures exactly where this solver stops being tractable and how
// close GreedySolver gets at a fraction of the cost.
type CSPSolver struct {
	// MaxNodes bounds explored search nodes; zero defaults to 200k.
	MaxNodes int
	// MaxSize bounds subset size to try; zero defaults to 12.
	MaxSize int
}

var _ Solver = (*CSPSolver)(nil)

// Solve implements Solver.
func (s CSPSolver) Solve(req Requirements, pool []Candidate) (*Composite, error) {
	maxNodes := s.MaxNodes
	if maxNodes <= 0 {
		maxNodes = 200000
	}
	maxSize := s.MaxSize
	if maxSize <= 0 {
		maxSize = 12
	}
	eligible := filterEligible(req, pool)
	if len(eligible) == 0 {
		return nil, ErrInfeasible
	}
	if req.Goal.MaxMembers > 0 && req.Goal.MaxMembers < maxSize {
		maxSize = req.Goal.MaxMembers
	}

	// Order candidates by descending coverage degree: better pruning.
	coverLists := make([][]int, len(eligible))
	for i := range eligible {
		for ci, cell := range req.Cells {
			if eligible[i].covers(req.Goal, cell) {
				coverLists[i] = append(coverLists[i], ci)
			}
		}
	}
	order := make([]int, len(eligible))
	for i := range order {
		order[i] = i
	}
	sort.Slice(order, func(a, b int) bool {
		if len(coverLists[order[a]]) != len(coverLists[order[b]]) {
			return len(coverLists[order[a]]) > len(coverLists[order[b]])
		}
		return eligible[order[a]].ID < eligible[order[b]].ID
	})

	st := &cspState{
		req:        req,
		eligible:   eligible,
		coverLists: coverLists,
		order:      order,
		budget:     maxNodes,
		cellHits:   make([]int, len(req.Cells)),
	}

	for size := 1; size <= maxSize; size++ {
		if st.budget <= 0 {
			break
		}
		if found := st.search(0, size, nil, 0); found != nil {
			a := Evaluate(req, found)
			return &Composite{Members: ids(found), Assurance: a}, nil
		}
	}
	return nil, ErrInfeasible
}

type cspState struct {
	req        Requirements
	eligible   []Candidate
	coverLists [][]int
	order      []int
	budget     int
	cellHits   []int
	satisfied  int
}

// search tries to complete a feasible set of exactly `remaining` more
// members starting at order position `from`. It returns the member set
// on success.
func (st *cspState) search(from, remaining int, members []Candidate, _ int) []Candidate {
	if st.budget <= 0 {
		return nil
	}
	st.budget--
	if remaining == 0 {
		a := Evaluate(st.req, members)
		if a.Feasible {
			out := make([]Candidate, len(members))
			copy(out, members)
			return out
		}
		return nil
	}
	// Prune: even taking the `remaining` best remaining candidates by
	// coverage degree cannot reach the coverage requirement.
	if !st.coverageStillPossible(from, remaining) {
		return nil
	}
	for oi := from; oi <= len(st.order)-remaining; oi++ {
		i := st.order[oi]
		// Choose i.
		for _, ci := range st.coverLists[i] {
			st.cellHits[ci]++
			if st.cellHits[ci] == st.req.CellNeed {
				st.satisfied++
			}
		}
		if got := st.search(oi+1, remaining-1, append(members, st.eligible[i]), 0); got != nil {
			// Undo before returning (callers above also undo).
			st.undo(i)
			return got
		}
		st.undo(i)
		if st.budget <= 0 {
			return nil
		}
	}
	return nil
}

func (st *cspState) undo(i int) {
	for _, ci := range st.coverLists[i] {
		if st.cellHits[ci] == st.req.CellNeed {
			st.satisfied--
		}
		st.cellHits[ci]--
	}
}

// coverageStillPossible is an optimistic bound: current satisfied cells
// plus the largest `remaining` cover-list sizes must reach NeedCells.
func (st *cspState) coverageStillPossible(from, remaining int) bool {
	possible := st.satisfied
	count := 0
	for oi := from; oi < len(st.order) && count < remaining; oi++ {
		possible += len(st.coverLists[st.order[oi]])
		count++
	}
	return possible >= st.req.NeedCells
}
