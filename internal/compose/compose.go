// Package compose synthesizes composite IoBT assets from discovered
// candidates (paper §III.B): given a high-level mission goal it derives
// concrete requirements, searches the candidate pool for a subset that
// satisfies them, repairs connectivity, and emits a quantified assurance
// report — the paper's "composable assurances of correctness and
// composable assessments of risk".
//
// Three solvers cover the paper's design space: GreedySolver (scalable
// marginal-gain max-coverage with the classic (1-1/e) guarantee),
// CSPSolver (exact minimum-cardinality search for small instances), and
// RandomSolver (the uninformed baseline experiment E2 compares against).
package compose

import (
	"errors"
	"fmt"
	"time"

	"iobt/internal/asset"
	"iobt/internal/geo"
	"iobt/internal/trust"
)

// Goal is a high-level mission need ("track insurgents and report on
// their activities within a geographic area").
type Goal struct {
	Name string
	// Area is the geographic region the mission must sense.
	Area geo.Rect
	// Modalities are the sensing modalities required (any listed bit
	// qualifies a sensor for coverage).
	Modalities asset.Modality
	// CoverageFrac is the fraction of Area that must be sensed, in (0,1].
	CoverageFrac float64
	// Redundancy is the k in k-coverage; values < 1 default to 1.
	Redundancy int
	// Compute and Bandwidth are aggregate resource demands across the
	// composite (MIPS / kb/s).
	Compute   float64
	Bandwidth float64
	// MaxLatency bounds the worst-case in-composite delivery latency
	// (diameter hops x PerHop). Zero disables the check.
	MaxLatency time.Duration
	// PerHop is the per-hop latency estimate used for the latency
	// assurance; zero defaults to 5ms.
	PerHop time.Duration
	// MinTrust excludes candidates below this trust score.
	MinTrust float64
	// MaxRiskFrac bounds the fraction of members that are gray or
	// low-trust; 0 means "no bound".
	MaxRiskFrac float64
	// MaxMembers caps composite size; 0 means unlimited.
	MaxMembers int
}

// Requirements is the machine-checkable derivation of a Goal: the
// concrete coverage cells, resource totals, and structural constraints
// the composite must meet. It is produced by Derive and consumed by
// solvers and Evaluate.
type Requirements struct {
	Goal Goal
	// Cells is the discretized coverage grid over Goal.Area.
	Cells []geo.Point
	// CellNeed is Redundancy (>=1).
	CellNeed int
	// NeedCells is the number of cells that must reach CellNeed coverage.
	NeedCells int
}

// Derive performs the paper's "reasoning from goals to means": it turns
// the declarative Goal into explicit requirements.
func Derive(g Goal) Requirements {
	if g.Redundancy < 1 {
		g.Redundancy = 1
	}
	if g.PerHop <= 0 {
		g.PerHop = 5 * time.Millisecond
	}
	if g.CoverageFrac <= 0 {
		g.CoverageFrac = 0.9
	}
	if g.CoverageFrac > 1 {
		g.CoverageFrac = 1
	}
	cells := coverageCells(g.Area)
	need := int(g.CoverageFrac * float64(len(cells)))
	if need < 1 && len(cells) > 0 {
		need = 1
	}
	return Requirements{
		Goal:      g,
		Cells:     cells,
		CellNeed:  g.Redundancy,
		NeedCells: need,
	}
}

// coverageCells discretizes an area into at most ~32x32 cell centers.
func coverageCells(area geo.Rect) []geo.Point {
	const maxSide = 32
	w, h := area.Width(), area.Height()
	if w <= 0 || h <= 0 {
		return nil
	}
	nx, ny := maxSide, maxSide
	if w < h {
		nx = int(float64(maxSide) * w / h)
	} else {
		ny = int(float64(maxSide) * h / w)
	}
	if nx < 1 {
		nx = 1
	}
	if ny < 1 {
		ny = 1
	}
	cells := make([]geo.Point, 0, nx*ny)
	dx, dy := w/float64(nx), h/float64(ny)
	for iy := 0; iy < ny; iy++ {
		for ix := 0; ix < nx; ix++ {
			cells = append(cells, geo.Point{
				X: area.Min.X + (float64(ix)+0.5)*dx,
				Y: area.Min.Y + (float64(iy)+0.5)*dy,
			})
		}
	}
	return cells
}

// Candidate is one recruitable asset as seen by the composer.
type Candidate struct {
	ID          asset.ID
	Pos         geo.Point
	Caps        asset.Capabilities
	Trust       float64
	Affiliation asset.Affiliation
}

// covers reports whether the candidate senses point p with a modality
// required by the goal.
func (c *Candidate) covers(g Goal, p geo.Point) bool {
	if g.Modalities != 0 && c.Caps.Modalities&g.Modalities == 0 {
		return false
	}
	return c.Pos.Dist(p) <= c.Caps.SenseRange
}

// PoolFromPopulation builds the candidate pool from ground truth: all
// alive blue/gray assets, with trust from the ledger (0.5 if nil).
func PoolFromPopulation(pop *asset.Population, ledger *trust.Ledger) []Candidate {
	var out []Candidate
	for _, a := range pop.All() {
		if !a.Alive() || a.Affiliation == asset.Red {
			continue
		}
		tr := 0.5
		if ledger != nil {
			tr = ledger.Score(a.ID)
		}
		out = append(out, Candidate{
			ID:          a.ID,
			Pos:         a.Pos(),
			Caps:        a.Caps,
			Trust:       tr,
			Affiliation: a.Affiliation,
		})
	}
	return out
}

// Assurance quantifies what a composite guarantees (paper: "aggregate
// properties ... must be formally assured in an appropriately
// quantifiable and operationally relevant manner").
type Assurance struct {
	CoverageFrac float64
	Connected    bool
	EstLatency   time.Duration
	Compute      float64
	Bandwidth    float64
	MeanTrust    float64
	RiskFrac     float64
	Feasible     bool
	Violations   []string
}

// Composite is a synthesized asset: the member set plus its assurance.
type Composite struct {
	Members   []asset.ID
	Assurance Assurance
}

// Solver searches the pool for a composite meeting req.
type Solver interface {
	Solve(req Requirements, pool []Candidate) (*Composite, error)
}

// ErrInfeasible means no feasible composite was found in the pool.
var ErrInfeasible = errors.New("compose: no feasible composite in candidate pool")

// Evaluate computes the assurance report of a member set against req.
func Evaluate(req Requirements, members []Candidate) Assurance {
	g := req.Goal
	a := Assurance{}

	// Coverage.
	if len(req.Cells) > 0 {
		covered := 0
		for _, cell := range req.Cells {
			hits := 0
			for i := range members {
				if members[i].covers(g, cell) {
					hits++
					if hits >= req.CellNeed {
						break
					}
				}
			}
			if hits >= req.CellNeed {
				covered++
			}
		}
		a.CoverageFrac = float64(covered) / float64(len(req.Cells))
	}

	// Resources and trust.
	risky := 0
	for i := range members {
		a.Compute += members[i].Caps.Compute
		a.Bandwidth += members[i].Caps.Bandwidth
		a.MeanTrust += members[i].Trust
		if members[i].Affiliation == asset.Gray || members[i].Trust < g.MinTrust {
			risky++
		}
	}
	if len(members) > 0 {
		a.MeanTrust /= float64(len(members))
		a.RiskFrac = float64(risky) / float64(len(members))
	}

	// Connectivity and latency over the composite's own radio graph.
	diam, connected := compositeDiameter(members)
	a.Connected = connected
	perHop := g.PerHop
	if perHop <= 0 {
		perHop = 5 * time.Millisecond
	}
	a.EstLatency = time.Duration(diam) * perHop

	// Verdict.
	needFrac := float64(req.NeedCells) / float64(maxInt(len(req.Cells), 1))
	if a.CoverageFrac+1e-9 < needFrac {
		a.Violations = append(a.Violations, fmt.Sprintf("coverage %.2f < %.2f", a.CoverageFrac, needFrac))
	}
	if a.Compute < g.Compute {
		a.Violations = append(a.Violations, fmt.Sprintf("compute %.0f < %.0f", a.Compute, g.Compute))
	}
	if a.Bandwidth < g.Bandwidth {
		a.Violations = append(a.Violations, fmt.Sprintf("bandwidth %.0f < %.0f", a.Bandwidth, g.Bandwidth))
	}
	if !connected && len(members) > 1 {
		a.Violations = append(a.Violations, "composite not connected")
	}
	if g.MaxLatency > 0 && a.EstLatency > g.MaxLatency {
		a.Violations = append(a.Violations, fmt.Sprintf("latency %v > %v", a.EstLatency, g.MaxLatency))
	}
	if g.MaxRiskFrac > 0 && a.RiskFrac > g.MaxRiskFrac {
		a.Violations = append(a.Violations, fmt.Sprintf("risk %.2f > %.2f", a.RiskFrac, g.MaxRiskFrac))
	}
	if g.MaxMembers > 0 && len(members) > g.MaxMembers {
		a.Violations = append(a.Violations, fmt.Sprintf("members %d > %d", len(members), g.MaxMembers))
	}
	a.Feasible = len(a.Violations) == 0
	return a
}

// compositeDiameter returns the hop diameter of the members' mutual
// radio graph (link when within min radio range) and whether the graph
// is connected. Empty or singleton sets are connected with diameter 0.
func compositeDiameter(members []Candidate) (int, bool) {
	n := len(members)
	if n <= 1 {
		return 0, true
	}
	adj := buildAdjacency(members)
	// BFS from node 0 for connectivity; track eccentricity from a few
	// sources for a diameter estimate (exact for trees, lower bound in
	// general — adequate for an assurance estimate).
	dist := bfsAll(adj, 0)
	maxD := 0
	far := 0
	for i, d := range dist {
		if d < 0 {
			return 0, false
		}
		if d > maxD {
			maxD, far = d, i
		}
	}
	// Second sweep from the farthest node tightens the estimate.
	dist2 := bfsAll(adj, far)
	for _, d := range dist2 {
		if d > maxD {
			maxD = d
		}
	}
	return maxD, true
}

func buildAdjacency(members []Candidate) [][]int {
	n := len(members)
	adj := make([][]int, n)
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			r := members[i].Caps.RadioRange
			if members[j].Caps.RadioRange < r {
				r = members[j].Caps.RadioRange
			}
			if members[i].Pos.Dist(members[j].Pos) <= r {
				adj[i] = append(adj[i], j)
				adj[j] = append(adj[j], i)
			}
		}
	}
	return adj
}

// bfsAll returns hop distances from src (-1 if unreachable).
func bfsAll(adj [][]int, src int) []int {
	dist := make([]int, len(adj))
	for i := range dist {
		dist[i] = -1
	}
	dist[src] = 0
	queue := []int{src}
	for len(queue) > 0 {
		u := queue[0]
		queue = queue[1:]
		for _, v := range adj[u] {
			if dist[v] < 0 {
				dist[v] = dist[u] + 1
				queue = append(queue, v)
			}
		}
	}
	return dist
}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}
