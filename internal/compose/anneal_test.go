package compose

import (
	"testing"

	"iobt/internal/asset"
	"iobt/internal/sim"
)

func TestAnnealFeasible(t *testing.T) {
	pool := gridPool(10, 180, 300)
	req := Derive(areaGoal())
	comp, err := AnnealSolver{RNG: sim.NewRNG(1)}.Solve(req, pool)
	if err != nil {
		t.Fatalf("anneal: %v (violations %v)", err, comp.Assurance.Violations)
	}
	if !comp.Assurance.Feasible {
		t.Fatalf("infeasible: %v", comp.Assurance.Violations)
	}
}

func TestAnnealNotWorseThanGreedyBySize(t *testing.T) {
	pool := gridPool(12, 200, 350)
	g := areaGoal()
	g.CoverageFrac = 0.85
	req := Derive(g)
	greedy, err := GreedySolver{}.Solve(req, pool)
	if err != nil {
		t.Fatalf("greedy: %v", err)
	}
	ann, err := AnnealSolver{RNG: sim.NewRNG(2), Steps: 6000}.Solve(req, pool)
	if err != nil {
		t.Fatalf("anneal: %v", err)
	}
	// Annealing optimizes size; allow slack of one member for the
	// connectivity post-pass.
	if len(ann.Members) > len(greedy.Members)+1 {
		t.Errorf("anneal %d members vs greedy %d; refinement failed",
			len(ann.Members), len(greedy.Members))
	}
}

func TestAnnealDeterministicPerSeed(t *testing.T) {
	pool := gridPool(8, 200, 350)
	req := Derive(areaGoal())
	a, errA := AnnealSolver{RNG: sim.NewRNG(7)}.Solve(req, pool)
	b, errB := AnnealSolver{RNG: sim.NewRNG(7)}.Solve(req, pool)
	if (errA == nil) != (errB == nil) {
		t.Fatalf("errors differ: %v vs %v", errA, errB)
	}
	if len(a.Members) != len(b.Members) {
		t.Fatalf("same seed produced different composites: %d vs %d members",
			len(a.Members), len(b.Members))
	}
	for i := range a.Members {
		if a.Members[i] != b.Members[i] {
			t.Fatal("same seed produced different member sets")
		}
	}
}

func TestAnnealEmptyPool(t *testing.T) {
	req := Derive(areaGoal())
	if _, err := (AnnealSolver{}).Solve(req, nil); err != ErrInfeasible {
		t.Errorf("err = %v, want ErrInfeasible", err)
	}
}

func TestAnnealRespectsTrustFloor(t *testing.T) {
	pool := gridPool(8, 200, 300)
	for i := range pool {
		if i%2 == 0 {
			pool[i].Trust = 0.1
		}
	}
	g := areaGoal()
	g.MinTrust = 0.5
	g.CoverageFrac = 0.6
	req := Derive(g)
	comp, err := AnnealSolver{RNG: sim.NewRNG(3)}.Solve(req, pool)
	if err != nil {
		t.Fatalf("anneal: %v", err)
	}
	low := map[asset.ID]bool{}
	for i := range pool {
		if pool[i].Trust < 0.5 {
			low[pool[i].ID] = true
		}
	}
	for _, id := range comp.Members {
		if low[id] {
			t.Errorf("low-trust candidate %d recruited", id)
		}
	}
}

func TestAnnealRespectsMaxMembers(t *testing.T) {
	pool := gridPool(10, 300, 900)
	g := areaGoal()
	g.CoverageFrac = 0.5
	g.MaxMembers = 6
	req := Derive(g)
	comp, err := AnnealSolver{RNG: sim.NewRNG(4), Steps: 8000}.Solve(req, pool)
	if err != nil {
		t.Fatalf("anneal: %v (violations %v)", err, comp.Assurance.Violations)
	}
	if len(comp.Members) > 6 {
		t.Errorf("members = %d > cap 6", len(comp.Members))
	}
}
