package compose

import (
	"iobt/internal/asset"
)

// Recompose incrementally repairs a composite after member losses: it
// keeps the surviving members and greedily adds replacements from the
// pool to restore coverage, resources, and connectivity. This is the
// paper's "re-assemble, for example, upon damage ... on demand and
// within an appropriately short time" requirement; experiments E2/E4
// compare its repair time against solving from scratch.
//
// Unlike GreedySolver, Recompose never scores candidates against the
// full cell grid: it first computes the cells still open after the
// survivors are counted, then evaluates candidates against that (much
// smaller) open set — the work is proportional to the damage, not to
// the mission size.
func Recompose(req Requirements, prev *Composite, failed map[asset.ID]bool, pool []Candidate) (*Composite, error) {
	if prev == nil {
		return GreedySolver{}.Solve(req, pool)
	}
	eligible := filterEligible(req, pool)
	if len(eligible) == 0 {
		return nil, ErrInfeasible
	}
	byID := make(map[asset.ID]int, len(eligible))
	for i := range eligible {
		byID[eligible[i].ID] = i
	}

	g := req.Goal
	chosen := make([]bool, len(eligible))
	cellHits := make([]int, len(req.Cells))
	satisfied := 0
	var members []Candidate

	countCells := func(c *Candidate) {
		for ci, cell := range req.Cells {
			if c.covers(g, cell) {
				cellHits[ci]++
				if cellHits[ci] == req.CellNeed {
					satisfied++
				}
			}
		}
	}
	// Re-seat survivors.
	for _, id := range prev.Members {
		if failed[id] {
			continue
		}
		if i, ok := byID[id]; ok && !chosen[i] {
			chosen[i] = true
			members = append(members, eligible[i])
			countCells(&eligible[i])
		}
	}

	// Open cells: those still below the k-coverage requirement.
	var open []int
	for ci := range req.Cells {
		if cellHits[ci] < req.CellNeed {
			open = append(open, ci)
		}
	}

	// Greedy top-up scored against open cells only.
	for satisfied < req.NeedCells && len(open) > 0 {
		best, bestGain := -1, 0
		for i := range eligible {
			if chosen[i] {
				continue
			}
			gain := 0
			for _, ci := range open {
				if eligible[i].covers(g, req.Cells[ci]) {
					gain++
				}
			}
			if gain > bestGain {
				best, bestGain = i, gain
			}
		}
		if best < 0 {
			break
		}
		chosen[best] = true
		members = append(members, eligible[best])
		countCells(&eligible[best])
		// Shrink the open set.
		var still []int
		for _, ci := range open {
			if cellHits[ci] < req.CellNeed {
				still = append(still, ci)
			}
		}
		open = still
		if g.MaxMembers > 0 && len(members) >= g.MaxMembers {
			break
		}
	}

	// Resource and connectivity repair reuse the greedy helpers; they
	// need a pick function that maintains the same bookkeeping.
	pick := func(i int) {
		if chosen[i] {
			return
		}
		chosen[i] = true
		members = append(members, eligible[i])
		countCells(&eligible[i])
	}
	members = topUpResources(req, eligible, chosen, members, pick)
	members = repairConnectivity(eligible, chosen, members, pick)

	a := Evaluate(req, members)
	comp := &Composite{Members: ids(members), Assurance: a}
	if !a.Feasible {
		return comp, ErrInfeasible
	}
	return comp, nil
}
