package compose

import (
	"testing"
	"time"

	"iobt/internal/asset"
	"iobt/internal/geo"
	"iobt/internal/sim"
)

// gridPool lays out n x n sensor candidates evenly over a 1000x1000 area
// with the given sense and radio ranges.
func gridPool(n int, senseRange, radioRange float64) []Candidate {
	var out []Candidate
	step := 1000.0 / float64(n)
	id := asset.ID(0)
	for iy := 0; iy < n; iy++ {
		for ix := 0; ix < n; ix++ {
			out = append(out, Candidate{
				ID:  id,
				Pos: geo.Point{X: (float64(ix) + 0.5) * step, Y: (float64(iy) + 0.5) * step},
				Caps: asset.Capabilities{
					Modalities: asset.ModVisual,
					SenseRange: senseRange,
					RadioRange: radioRange,
					Compute:    50,
					Bandwidth:  500,
				},
				Trust:       0.9,
				Affiliation: asset.Blue,
			})
			id++
		}
	}
	return out
}

func areaGoal() Goal {
	return Goal{
		Name:         "test",
		Area:         geo.NewRect(geo.Point{X: 0, Y: 0}, geo.Point{X: 1000, Y: 1000}),
		Modalities:   asset.ModVisual,
		CoverageFrac: 0.9,
		PerHop:       5 * time.Millisecond,
	}
}

func TestDeriveDefaults(t *testing.T) {
	req := Derive(Goal{Area: geo.NewRect(geo.Point{}, geo.Point{X: 100, Y: 100})})
	if req.CellNeed != 1 {
		t.Errorf("CellNeed = %d, want 1", req.CellNeed)
	}
	if len(req.Cells) == 0 {
		t.Fatal("no cells derived")
	}
	if req.NeedCells <= 0 || req.NeedCells > len(req.Cells) {
		t.Errorf("NeedCells = %d of %d", req.NeedCells, len(req.Cells))
	}
	for _, c := range req.Cells {
		if !req.Goal.Area.Contains(c) {
			t.Fatalf("cell %v outside area", c)
		}
	}
}

func TestDeriveDegenerateArea(t *testing.T) {
	req := Derive(Goal{Area: geo.Rect{}})
	if len(req.Cells) != 0 {
		t.Error("degenerate area should yield no cells")
	}
}

func TestGreedyCoversArea(t *testing.T) {
	pool := gridPool(10, 180, 300)
	req := Derive(areaGoal())
	comp, err := GreedySolver{}.Solve(req, pool)
	if err != nil {
		t.Fatalf("greedy: %v (assurance %+v)", err, comp)
	}
	if comp.Assurance.CoverageFrac < 0.9 {
		t.Errorf("coverage = %.2f", comp.Assurance.CoverageFrac)
	}
	if !comp.Assurance.Connected {
		t.Error("composite not connected")
	}
	if !comp.Assurance.Feasible {
		t.Errorf("not feasible: %v", comp.Assurance.Violations)
	}
	// Greedy should use far fewer than all 100 candidates.
	if len(comp.Members) > 60 {
		t.Errorf("greedy selected %d members; expected economy", len(comp.Members))
	}
}

func TestGreedyRespectsTrustFloor(t *testing.T) {
	pool := gridPool(8, 200, 300)
	for i := range pool {
		if i%2 == 0 {
			pool[i].Trust = 0.1
		}
	}
	g := areaGoal()
	g.MinTrust = 0.5
	req := Derive(g)
	comp, err := GreedySolver{}.Solve(req, pool)
	if err != nil {
		t.Fatalf("greedy: %v", err)
	}
	low := map[asset.ID]bool{}
	for i := range pool {
		if pool[i].Trust < 0.5 {
			low[pool[i].ID] = true
		}
	}
	for _, id := range comp.Members {
		if low[id] {
			t.Errorf("low-trust candidate %d recruited", id)
		}
	}
}

func TestGreedyInfeasibleWhenPoolTooWeak(t *testing.T) {
	pool := gridPool(2, 50, 300) // 4 tiny sensors cannot cover 90%
	req := Derive(areaGoal())
	comp, err := GreedySolver{}.Solve(req, pool)
	if err != ErrInfeasible {
		t.Fatalf("err = %v, want ErrInfeasible", err)
	}
	if comp == nil || comp.Assurance.Feasible {
		t.Error("infeasible composite should still report assurance")
	}
	if len(comp.Assurance.Violations) == 0 {
		t.Error("violations empty for infeasible composite")
	}
}

func TestGreedyResourceTopUp(t *testing.T) {
	pool := gridPool(6, 200, 300)
	// Add two compute-rich candidates far from coverage relevance.
	pool = append(pool,
		Candidate{ID: 1000, Pos: geo.Point{X: 500, Y: 500}, Caps: asset.Capabilities{Compute: 1e5, Bandwidth: 1e5, RadioRange: 400}, Trust: 0.9, Affiliation: asset.Blue},
	)
	g := areaGoal()
	g.Compute = 5e4
	g.Bandwidth = 5e4
	req := Derive(g)
	comp, err := GreedySolver{}.Solve(req, pool)
	if err != nil {
		t.Fatalf("greedy: %v (violations %v)", err, comp.Assurance.Violations)
	}
	if comp.Assurance.Compute < 5e4 {
		t.Errorf("compute = %v", comp.Assurance.Compute)
	}
	hasEdge := false
	for _, id := range comp.Members {
		if id == 1000 {
			hasEdge = true
		}
	}
	if !hasEdge {
		t.Error("compute-rich candidate not recruited")
	}
}

func TestGreedyKCoverage(t *testing.T) {
	pool := gridPool(12, 200, 350)
	g := areaGoal()
	g.Redundancy = 2
	g.CoverageFrac = 0.8
	req := Derive(g)
	comp, err := GreedySolver{}.Solve(req, pool)
	if err != nil {
		t.Fatalf("greedy k=2: %v", err)
	}
	g1 := areaGoal()
	g1.CoverageFrac = 0.8
	comp1, err := GreedySolver{}.Solve(Derive(g1), pool)
	if err != nil {
		t.Fatalf("greedy k=1: %v", err)
	}
	if len(comp.Members) <= len(comp1.Members) {
		t.Errorf("2-coverage used %d members, 1-coverage %d; want more for k=2",
			len(comp.Members), len(comp1.Members))
	}
}

func TestConnectivityRepairAddsBridges(t *testing.T) {
	// Two sensor clusters out of radio range, plus available bridge nodes
	// between them with no sensing value.
	var pool []Candidate
	mk := func(id asset.ID, x, y, sense, radio float64) Candidate {
		return Candidate{ID: id, Pos: geo.Point{X: x, Y: y},
			Caps:  asset.Capabilities{Modalities: asset.ModVisual, SenseRange: sense, RadioRange: radio, Compute: 10, Bandwidth: 100},
			Trust: 0.9, Affiliation: asset.Blue}
	}
	pool = append(pool, mk(0, 100, 500, 600, 300))
	pool = append(pool, mk(1, 900, 500, 600, 300))
	pool = append(pool, mk(2, 400, 500, 0, 300)) // stepping-stone relays
	pool = append(pool, mk(3, 700, 500, 0, 300))
	g := areaGoal()
	g.CoverageFrac = 0.8 // forces both clusters into the composite
	req := Derive(g)
	comp, err := GreedySolver{}.Solve(req, pool)
	if err != nil {
		t.Fatalf("greedy: %v (violations %v)", err, comp.Assurance.Violations)
	}
	if !comp.Assurance.Connected {
		t.Error("repair failed to connect clusters")
	}
	if len(comp.Members) < 4 {
		t.Errorf("expected bridges recruited, members = %v", comp.Members)
	}
}

func TestCSPFindsMinimal(t *testing.T) {
	// 3x3 grid with big sensors: CSP should find a small exact cover.
	pool := gridPool(3, 450, 900)
	g := areaGoal()
	g.CoverageFrac = 0.8
	req := Derive(g)
	comp, err := CSPSolver{}.Solve(req, pool)
	if err != nil {
		t.Fatalf("csp: %v", err)
	}
	greedy, err := GreedySolver{}.Solve(req, pool)
	if err != nil {
		t.Fatalf("greedy: %v", err)
	}
	if len(comp.Members) > len(greedy.Members) {
		t.Errorf("CSP (%d members) worse than greedy (%d)", len(comp.Members), len(greedy.Members))
	}
	if !comp.Assurance.Feasible {
		t.Error("CSP solution infeasible")
	}
}

func TestCSPInfeasible(t *testing.T) {
	pool := gridPool(2, 40, 900)
	req := Derive(areaGoal())
	if _, err := (CSPSolver{MaxNodes: 10000, MaxSize: 4}).Solve(req, pool); err != ErrInfeasible {
		t.Errorf("err = %v, want ErrInfeasible", err)
	}
}

func TestCSPBudgetExhaustion(t *testing.T) {
	pool := gridPool(8, 60, 900) // needs many nodes; tiny budget
	req := Derive(areaGoal())
	if _, err := (CSPSolver{MaxNodes: 50, MaxSize: 20}).Solve(req, pool); err != ErrInfeasible {
		t.Errorf("err = %v, want ErrInfeasible on budget exhaustion", err)
	}
}

func TestRandomSolverEventuallyFeasibleOnEasyInstance(t *testing.T) {
	pool := gridPool(5, 400, 900) // generous sensors: most subsets work
	g := areaGoal()
	g.CoverageFrac = 0.6
	req := Derive(g)
	comp, err := RandomSolver{RNG: sim.NewRNG(3), Attempts: 50}.Solve(req, pool)
	if err != nil {
		t.Fatalf("random solver failed easy instance: %v", err)
	}
	if !comp.Assurance.Feasible {
		t.Error("claimed success but infeasible")
	}
}

func TestRandomSolverFailsHardInstance(t *testing.T) {
	// Tight coverage with small sensors: random needs near-perfect
	// placement and should fail with a modest attempt budget.
	pool := gridPool(10, 110, 300)
	g := areaGoal()
	g.CoverageFrac = 0.95
	req := Derive(g)
	comp, err := RandomSolver{RNG: sim.NewRNG(4), Attempts: 5, StartSize: 8, MaxSize: 30}.Solve(req, pool)
	if err == nil {
		t.Skip("random got lucky; acceptable but rare")
	}
	if comp != nil && comp.Assurance.Feasible {
		t.Error("error returned with feasible assurance")
	}
}

func TestRecomposeRepairsLoss(t *testing.T) {
	pool := gridPool(10, 180, 300)
	req := Derive(areaGoal())
	comp, err := GreedySolver{}.Solve(req, pool)
	if err != nil {
		t.Fatalf("initial solve: %v", err)
	}
	// Fail a third of the members.
	failed := map[asset.ID]bool{}
	for i, id := range comp.Members {
		if i%3 == 0 {
			failed[id] = true
		}
	}
	// Remove failed nodes from the pool too (they are dead).
	var pool2 []Candidate
	for _, c := range pool {
		if !failed[c.ID] {
			pool2 = append(pool2, c)
		}
	}
	repaired, err := Recompose(req, comp, failed, pool2)
	if err != nil {
		t.Fatalf("recompose: %v (violations %v)", err, repaired.Assurance.Violations)
	}
	if repaired.Assurance.CoverageFrac < 0.9 {
		t.Errorf("repaired coverage = %.2f", repaired.Assurance.CoverageFrac)
	}
	for _, id := range repaired.Members {
		if failed[id] {
			t.Errorf("failed member %d still present", id)
		}
	}
	// Survivors should be retained (incrementality).
	surv := map[asset.ID]bool{}
	for _, id := range comp.Members {
		if !failed[id] {
			surv[id] = true
		}
	}
	kept := 0
	for _, id := range repaired.Members {
		if surv[id] {
			kept++
		}
	}
	if kept < len(surv) {
		t.Errorf("recompose dropped %d survivors", len(surv)-kept)
	}
}

func TestRecomposeNilPrevious(t *testing.T) {
	pool := gridPool(10, 180, 300)
	req := Derive(areaGoal())
	comp, err := Recompose(req, nil, nil, pool)
	if err != nil {
		t.Fatalf("recompose from scratch: %v", err)
	}
	if !comp.Assurance.Feasible {
		t.Error("infeasible")
	}
}

func TestEvaluateRiskFraction(t *testing.T) {
	pool := gridPool(4, 300, 900)
	pool[0].Affiliation = asset.Gray
	pool[1].Trust = 0.1
	g := areaGoal()
	g.MinTrust = 0.3
	g.CoverageFrac = 0.5
	req := Derive(g)
	a := Evaluate(req, pool)
	wantRisk := 2.0 / float64(len(pool))
	if a.RiskFrac != wantRisk {
		t.Errorf("RiskFrac = %v, want %v", a.RiskFrac, wantRisk)
	}
}

func TestEvaluateLatencyBound(t *testing.T) {
	// A long chain has a large diameter; tight MaxLatency must flag it.
	var members []Candidate
	for i := 0; i < 10; i++ {
		members = append(members, Candidate{
			ID: asset.ID(i), Pos: geo.Point{X: float64(i) * 90, Y: 0},
			Caps:  asset.Capabilities{Modalities: asset.ModVisual, SenseRange: 100, RadioRange: 100},
			Trust: 0.9, Affiliation: asset.Blue,
		})
	}
	g := Goal{
		Area:         geo.NewRect(geo.Point{}, geo.Point{X: 900, Y: 50}),
		Modalities:   asset.ModVisual,
		CoverageFrac: 0.5,
		MaxLatency:   10 * time.Millisecond,
		PerHop:       5 * time.Millisecond,
	}
	req := Derive(g)
	a := Evaluate(req, members)
	if a.EstLatency <= 10*time.Millisecond {
		t.Errorf("EstLatency = %v; chain of 10 should exceed 2 hops", a.EstLatency)
	}
	if a.Feasible {
		t.Error("latency violation not flagged")
	}
}

func TestEvaluateEmptyMembers(t *testing.T) {
	req := Derive(areaGoal())
	a := Evaluate(req, nil)
	if a.Feasible {
		t.Error("empty composite cannot be feasible for a coverage goal")
	}
	if a.CoverageFrac != 0 || a.MeanTrust != 0 {
		t.Error("empty composite stats should be zero")
	}
	if !a.Connected {
		t.Error("empty composite is trivially connected")
	}
}

func TestPoolFromPopulationExcludesRedAndDead(t *testing.T) {
	terr := geo.NewOpenTerrain(1000, 1000)
	pop := asset.NewPopulation(terr)
	mk := func(aff asset.Affiliation) asset.ID {
		a := &asset.Asset{Affiliation: aff, Class: asset.ClassSensor,
			Caps: asset.DefaultCaps(asset.ClassSensor), Online: true,
			Mobility: &geo.Static{P: geo.Point{X: 500, Y: 500}}}
		a.Energy = 100
		return pop.Add(a)
	}
	blue := mk(asset.Blue)
	mk(asset.Red)
	deadID := mk(asset.Blue)
	pop.Kill(deadID)
	pool := PoolFromPopulation(pop, nil)
	if len(pool) != 1 || pool[0].ID != blue {
		t.Errorf("pool = %+v, want only blue alive", pool)
	}
	if pool[0].Trust != 0.5 {
		t.Errorf("nil ledger trust = %v, want 0.5", pool[0].Trust)
	}
}
