package compose

import (
	"testing"
	"testing/quick"

	"iobt/internal/asset"
	"iobt/internal/geo"
	"iobt/internal/sim"
)

// randomInstance draws a random but structurally valid composition
// instance.
func randomInstance(seed int64) (Requirements, []Candidate) {
	rng := sim.NewRNG(seed)
	n := 20 + rng.Intn(60)
	var pool []Candidate
	for i := 0; i < n; i++ {
		pool = append(pool, Candidate{
			ID:  asset.ID(i),
			Pos: geo.Point{X: rng.Uniform(0, 1000), Y: rng.Uniform(0, 1000)},
			Caps: asset.Capabilities{
				Modalities: asset.ModVisual,
				SenseRange: rng.Uniform(50, 300),
				RadioRange: rng.Uniform(100, 400),
				Compute:    rng.Uniform(0, 200),
				Bandwidth:  rng.Uniform(0, 1000),
			},
			Trust:       rng.Uniform(0, 1),
			Affiliation: asset.Blue,
		})
	}
	g := Goal{
		Area:         geo.NewRect(geo.Point{}, geo.Point{X: 1000, Y: 1000}),
		CoverageFrac: rng.Uniform(0.2, 0.8),
		MinTrust:     rng.Uniform(0, 0.4),
	}
	return Derive(g), pool
}

// Property: Evaluate outputs are always well-formed, whatever the
// member set.
func TestEvaluateInvariants(t *testing.T) {
	prop := func(seed int64, take uint8) bool {
		req, pool := randomInstance(seed)
		k := int(take) % (len(pool) + 1)
		members := pool[:k]
		a := Evaluate(req, members)
		if a.CoverageFrac < 0 || a.CoverageFrac > 1 {
			return false
		}
		if a.RiskFrac < 0 || a.RiskFrac > 1 {
			return false
		}
		if a.MeanTrust < 0 || a.MeanTrust > 1 {
			return false
		}
		if a.Feasible && len(a.Violations) > 0 {
			return false
		}
		if !a.Feasible && len(a.Violations) == 0 {
			return false
		}
		if a.EstLatency < 0 {
			return false
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

// Property: whenever GreedySolver reports success, the returned
// composite re-evaluates as feasible and respects the trust floor.
func TestGreedySoundness(t *testing.T) {
	prop := func(seed int64) bool {
		req, pool := randomInstance(seed)
		comp, err := GreedySolver{}.Solve(req, pool)
		if err != nil {
			return true // infeasible instances are fine
		}
		byID := map[asset.ID]Candidate{}
		for _, c := range pool {
			byID[c.ID] = c
		}
		var members []Candidate
		for _, id := range comp.Members {
			c, ok := byID[id]
			if !ok {
				return false // invented a member
			}
			if c.Trust < req.Goal.MinTrust {
				return false // trust floor violated
			}
			members = append(members, c)
		}
		return Evaluate(req, members).Feasible
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

// Property: members never repeat in a greedy composite.
func TestGreedyNoDuplicates(t *testing.T) {
	prop := func(seed int64) bool {
		req, pool := randomInstance(seed)
		comp, err := GreedySolver{}.Solve(req, pool)
		if err != nil {
			return true
		}
		seen := map[asset.ID]bool{}
		for _, id := range comp.Members {
			if seen[id] {
				return false
			}
			seen[id] = true
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}
