package compose

import (
	"iobt/internal/asset"
	"iobt/internal/checkpoint"
)

// Composite membership is part of the command post's mission state: the
// post that synthesized the composite is the only place the member roll
// exists. EncodeComposite/DecodeComposite give the checkpoint subsystem
// a deterministic wire form so a warm-promoted successor inherits the
// roll instead of re-synthesizing it.

// EncodeComposite appends the composite's membership and headline
// assurance to the encoder. Members are written in roll order (the
// solver's order is deterministic per seed, and restoring it preserves
// any order-dependent downstream behavior exactly).
func EncodeComposite(e *checkpoint.Encoder, c *Composite) {
	if c == nil {
		e.Int(-1)
		return
	}
	e.Int(len(c.Members))
	for _, id := range c.Members {
		e.Int64(int64(id))
	}
	e.Float64(c.Assurance.CoverageFrac)
	e.Bool(c.Assurance.Connected)
	e.Float64(c.Assurance.MeanTrust)
	e.Float64(c.Assurance.RiskFrac)
	e.Bool(c.Assurance.Feasible)
}

// DecodeComposite reads a composite written by EncodeComposite,
// returning nil for the nil marker. Violations and resource detail are
// not round-tripped; a restored composite carries the roll plus the
// headline assurance figures the runtime reports.
func DecodeComposite(d *checkpoint.Decoder) *Composite {
	n := d.Int()
	if d.Err() != nil || n < 0 {
		return nil
	}
	c := &Composite{Members: make([]asset.ID, 0, n)}
	for i := 0; i < n; i++ {
		c.Members = append(c.Members, asset.ID(d.Int64()))
	}
	c.Assurance.CoverageFrac = d.Float64()
	c.Assurance.Connected = d.Bool()
	c.Assurance.MeanTrust = d.Float64()
	c.Assurance.RiskFrac = d.Float64()
	c.Assurance.Feasible = d.Bool()
	if d.Err() != nil {
		return nil
	}
	return c
}
