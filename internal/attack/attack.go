// Package attack implements the adversary: jamming fields, node capture,
// data contamination, traffic saturation, and Sybil identities.
//
// The paper (§II) requires operation in "contested and adversarial
// environments" with "determined intelligent adversaries"; every
// experiment that claims resilience injects its threat model from here.
package attack

import (
	"time"

	"iobt/internal/asset"
	"iobt/internal/geo"
	"iobt/internal/sim"
)

// Jammer is one jamming field with an activation window. Its footprint
// is the circle Area when Area.Radius is positive, otherwise the
// rectangle Region (the `jam region` fault verb); a jammer with neither
// covers nothing.
type Jammer struct {
	Area geo.Circle
	// Region is the rectangular footprint used when Area is unset.
	Region geo.Rect
	// Intensity in [0,1]: fraction of radio range destroyed inside the
	// footprint.
	Intensity float64
	// From/Until bound the active window in virtual time. A zero Until
	// means "forever".
	From, Until time.Duration
}

// Active reports whether the jammer is on at time now.
func (j Jammer) Active(now time.Duration) bool {
	if now < j.From {
		return false
	}
	return j.Until == 0 || now < j.Until
}

// Covers reports whether the jammer's footprint includes p.
func (j Jammer) Covers(p geo.Point) bool {
	if j.Area.Radius > 0 {
		return j.Area.Contains(p)
	}
	return j.Region.Contains(p)
}

// Field aggregates jammers into the intensity function the mesh consumes.
type Field struct {
	eng     *sim.Engine
	jammers []Jammer
}

// NewField returns an empty jamming field.
func NewField(eng *sim.Engine) *Field {
	return &Field{eng: eng}
}

// Add installs a jammer.
func (f *Field) Add(j Jammer) {
	if j.Intensity < 0 {
		j.Intensity = 0
	}
	if j.Intensity > 1 {
		j.Intensity = 1
	}
	f.jammers = append(f.jammers, j)
}

// Clear removes all jammers.
func (f *Field) Clear() { f.jammers = f.jammers[:0] }

// At returns the maximum active jamming intensity at p.
func (f *Field) At(p geo.Point) float64 {
	now := f.eng.Now()
	maxI := 0.0
	for _, j := range f.jammers {
		if j.Active(now) && j.Covers(p) && j.Intensity > maxI {
			maxI = j.Intensity
		}
	}
	return maxI
}

// Capture compromises a node at the given virtual time: the node keeps
// operating but is adversary-controlled (Compromised=true) and its
// affiliation flips to red for ground-truth accounting.
func Capture(eng *sim.Engine, pop *asset.Population, id asset.ID, at time.Duration) {
	eng.ScheduleAt(at, "attack.capture", func() {
		a := pop.Get(id)
		if a == nil || !a.Alive() {
			return
		}
		a.Compromised = true
	})
}

// Contaminator perturbs sensor readings emitted by compromised or red
// nodes: values get a constant bias plus optional sign flips, modeling
// the paper's "conflicting and deceptive data".
type Contaminator struct {
	rng *sim.RNG
	// Bias is added to every contaminated reading.
	Bias float64
	// FlipProb is the probability a boolean claim is inverted.
	FlipProb float64
}

// NewContaminator returns a contaminator using rng.
func NewContaminator(rng *sim.RNG, bias, flipProb float64) *Contaminator {
	return &Contaminator{rng: rng, Bias: bias, FlipProb: flipProb}
}

// Value contaminates a scalar reading.
func (c *Contaminator) Value(v float64) float64 { return v + c.Bias }

// Claim contaminates a boolean claim.
func (c *Contaminator) Claim(b bool) bool {
	if c.rng.Bool(c.FlipProb) {
		return !b
	}
	return b
}

// Sybil forges n phantom identities around a real red node. The phantoms
// are added to the population as red phones clustered near the host so
// that discovery sees plausible-looking devices.
func Sybil(pop *asset.Population, host asset.ID, n int, rng *sim.RNG) []asset.ID {
	h := pop.Get(host)
	if h == nil {
		return nil
	}
	ids := make([]asset.ID, 0, n)
	for i := 0; i < n; i++ {
		caps := asset.DefaultCaps(asset.ClassPhone)
		a := &asset.Asset{
			Affiliation: asset.Red,
			Class:       asset.ClassPhone,
			Caps:        caps,
			Online:      true,
			Compromised: true,
			// Sybils copy the host's emission profile with slight jitter
			// (they are software identities on the same radio).
			Emission: h.Emission * rng.Uniform(0.9, 1.1),
			Mobility: &geo.Static{P: h.Pos().Add(geo.Vec{DX: rng.Uniform(-5, 5), DY: rng.Uniform(-5, 5)})},
		}
		a.Energy = caps.EnergyCap
		ids = append(ids, pop.Add(a))
	}
	return ids
}
