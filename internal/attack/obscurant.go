package attack

import (
	"time"

	"iobt/internal/asset"
	"iobt/internal/geo"
	"iobt/internal/sim"
)

// Obscurant is an environmental effect that blinds sensing modalities in
// an area — smoke blinding visual sensors is the paper's canonical
// example ("seismic sensing may be used when smoke or other phenomena
// render visual tracking unreliable", §IV.B). Unlike a Jammer it does
// not touch communication, only perception.
type Obscurant struct {
	Area geo.Circle
	// Blocks are the modality bits unusable inside Area.
	Blocks asset.Modality
	// From/Until bound the active window; zero Until means forever.
	From, Until time.Duration
}

// Active reports whether the obscurant is present at time now.
func (o Obscurant) Active(now time.Duration) bool {
	if now < o.From {
		return false
	}
	return o.Until == 0 || now < o.Until
}

// Obscurants aggregates environmental effects into the blocked-modality
// query the perception layer consumes.
type Obscurants struct {
	eng  *sim.Engine
	list []Obscurant
}

// NewObscurants returns an empty field.
func NewObscurants(eng *sim.Engine) *Obscurants {
	return &Obscurants{eng: eng}
}

// Add installs an obscurant.
func (f *Obscurants) Add(o Obscurant) { f.list = append(f.list, o) }

// Clear removes all obscurants.
func (f *Obscurants) Clear() { f.list = f.list[:0] }

// BlockedAt returns the union of modality bits blocked at p now.
func (f *Obscurants) BlockedAt(p geo.Point) asset.Modality {
	if f == nil {
		return 0
	}
	now := f.eng.Now()
	var blocked asset.Modality
	for _, o := range f.list {
		if o.Active(now) && o.Area.Contains(p) {
			blocked |= o.Blocks
		}
	}
	return blocked
}
