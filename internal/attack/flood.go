package attack

import (
	"time"

	"iobt/internal/asset"
	"iobt/internal/mesh"
	"iobt/internal/sim"
)

// Flood is a saturation attack: a set of adversarial sources pumps
// traffic at a victim to exhaust its bandwidth and compute, modeling the
// paper's concern that adversaries may "saturate processing resources,
// starve communication, or isolate information sources" (§IV.B).
type Flood struct {
	eng     *sim.Engine
	net     *mesh.Network
	sources []asset.ID
	victim  asset.ID
	// RatePerSec is messages per second per source.
	RatePerSec float64
	// Size is bytes per message.
	Size float64

	ticker *sim.Ticker
	sent   sim.Counter
}

// NewFlood returns an unstarted flood from sources at victim.
func NewFlood(eng *sim.Engine, net *mesh.Network, sources []asset.ID, victim asset.ID, ratePerSec, size float64) *Flood {
	srcs := make([]asset.ID, len(sources))
	copy(srcs, sources)
	return &Flood{
		eng:        eng,
		net:        net,
		sources:    srcs,
		victim:     victim,
		RatePerSec: ratePerSec,
		Size:       size,
	}
}

// Sent returns the number of attack messages emitted.
func (f *Flood) Sent() uint64 { return f.sent.Value() }

// Start begins emitting attack traffic.
func (f *Flood) Start() {
	if f.ticker != nil || f.RatePerSec <= 0 {
		return
	}
	interval := time.Duration(float64(time.Second) / f.RatePerSec)
	if interval <= 0 {
		interval = time.Millisecond
	}
	f.ticker = f.eng.Every(interval, "attack.flood", func() {
		for _, src := range f.sources {
			//iobt:allow errdrop flood traffic is adversarial load; a rejected send is the defense working, not a failure to report
			_ = f.net.Send(mesh.Message{From: src, To: f.victim, Size: f.Size, Kind: "attack"})
			f.sent.Inc()
		}
	})
}

// Stop halts the attack.
func (f *Flood) Stop() {
	if f.ticker != nil {
		f.ticker.Stop()
		f.ticker = nil
	}
}
