package attack

import (
	"testing"
	"time"

	"iobt/internal/asset"
	"iobt/internal/geo"
	"iobt/internal/mesh"
	"iobt/internal/sim"
)

func TestJammerWindow(t *testing.T) {
	j := Jammer{From: 10 * time.Second, Until: 20 * time.Second}
	if j.Active(5 * time.Second) {
		t.Error("active before From")
	}
	if !j.Active(15 * time.Second) {
		t.Error("inactive inside window")
	}
	if j.Active(25 * time.Second) {
		t.Error("active after Until")
	}
	forever := Jammer{From: 0, Until: 0}
	if !forever.Active(time.Hour) {
		t.Error("zero Until should mean forever")
	}
}

func TestFieldAt(t *testing.T) {
	eng := sim.NewEngine(1)
	f := NewField(eng)
	f.Add(Jammer{Area: geo.Circle{Center: geo.Point{X: 100, Y: 100}, Radius: 50}, Intensity: 0.6})
	f.Add(Jammer{Area: geo.Circle{Center: geo.Point{X: 100, Y: 100}, Radius: 30}, Intensity: 0.9})
	if got := f.At(geo.Point{X: 100, Y: 100}); got != 0.9 {
		t.Errorf("overlapping jammers: At = %v, want max 0.9", got)
	}
	if got := f.At(geo.Point{X: 140, Y: 100}); got != 0.6 {
		t.Errorf("outer ring: At = %v, want 0.6", got)
	}
	if got := f.At(geo.Point{X: 500, Y: 500}); got != 0 {
		t.Errorf("clear air: At = %v, want 0", got)
	}
	f.Clear()
	if f.At(geo.Point{X: 100, Y: 100}) != 0 {
		t.Error("Clear did not remove jammers")
	}
}

func TestFieldClampsIntensity(t *testing.T) {
	eng := sim.NewEngine(1)
	f := NewField(eng)
	f.Add(Jammer{Area: geo.Circle{Center: geo.Point{}, Radius: 10}, Intensity: 5})
	if got := f.At(geo.Point{}); got != 1 {
		t.Errorf("intensity not clamped: %v", got)
	}
}

func TestFieldTimeWindowViaEngine(t *testing.T) {
	eng := sim.NewEngine(1)
	f := NewField(eng)
	f.Add(Jammer{Area: geo.Circle{Center: geo.Point{}, Radius: 10}, Intensity: 1,
		From: 10 * time.Second, Until: 20 * time.Second})
	if f.At(geo.Point{}) != 0 {
		t.Error("jammer active before window")
	}
	eng.Schedule(15*time.Second, "check", func() {
		if f.At(geo.Point{}) != 1 {
			t.Error("jammer inactive during window")
		}
	})
	eng.Schedule(25*time.Second, "check", func() {
		if f.At(geo.Point{}) != 0 {
			t.Error("jammer active after window")
		}
	})
	_ = eng.Run(0)
}

func TestCapture(t *testing.T) {
	eng := sim.NewEngine(2)
	terr := geo.NewOpenTerrain(100, 100)
	pop := asset.NewPopulation(terr)
	a := &asset.Asset{Class: asset.ClassSensor, Caps: asset.DefaultCaps(asset.ClassSensor), Online: true, Affiliation: asset.Blue}
	a.Energy = 100
	id := pop.Add(a)
	Capture(eng, pop, id, 10*time.Second)
	_ = eng.Run(5 * time.Second)
	if a.Compromised {
		t.Error("compromised before capture time")
	}
	_ = eng.Run(10 * time.Second)
	if !a.Compromised {
		t.Error("not compromised after capture time")
	}
	// Capturing a dead or missing node must not panic.
	Capture(eng, pop, asset.ID(999), time.Second)
	pop.Kill(id)
	Capture(eng, pop, id, time.Second)
	_ = eng.Run(time.Minute)
}

func TestContaminator(t *testing.T) {
	rng := sim.NewRNG(3)
	c := NewContaminator(rng, 5, 1)
	if c.Value(10) != 15 {
		t.Errorf("Value = %v", c.Value(10))
	}
	if c.Claim(true) != false {
		t.Error("FlipProb=1 should always flip")
	}
	c2 := NewContaminator(rng, 0, 0)
	if c2.Claim(true) != true {
		t.Error("FlipProb=0 should never flip")
	}
}

func TestSybil(t *testing.T) {
	rng := sim.NewRNG(4)
	terr := geo.NewOpenTerrain(1000, 1000)
	pop := asset.NewPopulation(terr)
	host := &asset.Asset{Affiliation: asset.Red, Class: asset.ClassPhone,
		Caps: asset.DefaultCaps(asset.ClassPhone), Online: true, Emission: 0.8,
		Mobility: &geo.Static{P: geo.Point{X: 500, Y: 500}}}
	host.Energy = 100
	hid := pop.Add(host)
	ids := Sybil(pop, hid, 5, rng)
	if len(ids) != 5 {
		t.Fatalf("Sybil returned %d ids", len(ids))
	}
	for _, id := range ids {
		s := pop.Get(id)
		if s.Affiliation != asset.Red || !s.Compromised {
			t.Error("sybil not marked red/compromised")
		}
		if s.Pos().Dist(host.Pos()) > 10 {
			t.Error("sybil too far from host")
		}
	}
	if Sybil(pop, asset.ID(999), 3, rng) != nil {
		t.Error("Sybil on missing host should return nil")
	}
}

func TestFloodSaturatesVictim(t *testing.T) {
	eng := sim.NewEngine(5)
	terr := geo.NewOpenTerrain(500, 500)
	pop := asset.NewPopulation(terr)
	caps := asset.DefaultCaps(asset.ClassSensor)
	caps.RadioRange = 600
	var ids []asset.ID
	for i := 0; i < 4; i++ {
		a := &asset.Asset{Class: asset.ClassSensor, Caps: caps, Online: true,
			Mobility: &geo.Static{P: geo.Point{X: float64(100 * (i + 1)), Y: 250}}}
		a.Energy = caps.EnergyCap
		ids = append(ids, pop.Add(a))
	}
	cfg := mesh.DefaultConfig()
	cfg.StepMobility = false
	cfg.LossBase = 0
	net := mesh.New(eng, pop, terr, cfg)
	fl := NewFlood(eng, net, ids[1:], ids[0], 50, 10000)
	fl.Start()
	fl.Start() // idempotent
	_ = eng.Run(10 * time.Second)
	if fl.Sent() == 0 {
		t.Fatal("flood emitted nothing")
	}
	fl.Stop()
	sent := fl.Sent()
	_ = eng.Run(10 * time.Second)
	if fl.Sent() != sent {
		t.Error("flood continued after Stop")
	}
}

func TestFloodZeroRate(t *testing.T) {
	eng := sim.NewEngine(6)
	fl := NewFlood(eng, nil, nil, 0, 0, 10)
	fl.Start() // must not panic or schedule
	_ = eng.Run(time.Second)
	if fl.Sent() != 0 {
		t.Error("zero-rate flood sent messages")
	}
}

func TestObscurantWindowAndArea(t *testing.T) {
	eng := sim.NewEngine(7)
	f := NewObscurants(eng)
	f.Add(Obscurant{
		Area:   geo.Circle{Center: geo.Point{X: 100, Y: 100}, Radius: 50},
		Blocks: asset.ModVisual | asset.ModThermal,
		From:   10 * time.Second,
	})
	if f.BlockedAt(geo.Point{X: 100, Y: 100}) != 0 {
		t.Error("blocked before window")
	}
	eng.Schedule(15*time.Second, "check", func() {
		got := f.BlockedAt(geo.Point{X: 100, Y: 100})
		if !got.Has(asset.ModVisual | asset.ModThermal) {
			t.Errorf("blocked = %v", got)
		}
		if f.BlockedAt(geo.Point{X: 500, Y: 500}) != 0 {
			t.Error("blocked outside area")
		}
	})
	_ = eng.Run(0)
	f.Clear()
	eng.Schedule(time.Second, "after-clear", func() {
		if f.BlockedAt(geo.Point{X: 100, Y: 100}) != 0 {
			t.Error("blocked after Clear")
		}
	})
	_ = eng.Run(0)
}

func TestObscurantsNilSafe(t *testing.T) {
	var f *Obscurants
	if f.BlockedAt(geo.Point{}) != 0 {
		t.Error("nil obscurants should block nothing")
	}
}

func TestObscurantOverlappingUnion(t *testing.T) {
	eng := sim.NewEngine(8)
	f := NewObscurants(eng)
	f.Add(Obscurant{Area: geo.Circle{Center: geo.Point{}, Radius: 10}, Blocks: asset.ModVisual})
	f.Add(Obscurant{Area: geo.Circle{Center: geo.Point{}, Radius: 10}, Blocks: asset.ModThermal})
	if got := f.BlockedAt(geo.Point{}); !got.Has(asset.ModVisual | asset.ModThermal) {
		t.Errorf("union = %v", got)
	}
}
