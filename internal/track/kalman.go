// Package track implements multi-target tracking, the paper's flagship
// battlefield service (§II: "tracking a dispersed group of humans and
// vehicles moving through cluttered environments"). Composite sensors
// produce noisy position detections; constant-velocity Kalman filters
// smooth them; a nearest-neighbor tracker with gating associates
// detections to tracks, spawns tracks for new targets, coasts through
// short occlusions, and hands targets off between sensors as they move.
package track

import "iobt/internal/geo"

// KalmanCV is a 2-D constant-velocity Kalman filter with state
// [x, y, vx, vy]. Matrices are unrolled for the fixed 4x4 case.
type KalmanCV struct {
	// X is the state estimate.
	X [4]float64
	// P is the state covariance (row-major 4x4).
	P [16]float64
	// Q scales process noise (acceleration variance, m^2/s^4).
	Q float64
}

// NewKalmanCV returns a filter initialized at position z with unknown
// velocity: large velocity variance, measurement-level position
// variance.
func NewKalmanCV(z geo.Point, posVar, q float64) *KalmanCV {
	if posVar <= 0 {
		posVar = 25
	}
	if q <= 0 {
		q = 1
	}
	k := &KalmanCV{Q: q}
	k.X[0], k.X[1] = z.X, z.Y
	k.P[0] = posVar // var(x)
	k.P[5] = posVar // var(y)
	k.P[10] = 100   // var(vx): unknown velocity
	k.P[15] = 100   // var(vy)
	return k
}

// Pos returns the estimated position.
func (k *KalmanCV) Pos() geo.Point { return geo.Point{X: k.X[0], Y: k.X[1]} }

// Vel returns the estimated velocity vector.
func (k *KalmanCV) Vel() geo.Vec { return geo.Vec{DX: k.X[2], DY: k.X[3]} }

// PosVar returns the larger of the two position variances — the gate
// radius scale.
func (k *KalmanCV) PosVar() float64 {
	if k.P[0] > k.P[5] {
		return k.P[0]
	}
	return k.P[5]
}

// Predict advances the state by dt seconds.
func (k *KalmanCV) Predict(dt float64) {
	if dt <= 0 {
		return
	}
	// State: x += vx*dt, y += vy*dt.
	k.X[0] += k.X[2] * dt
	k.X[1] += k.X[3] * dt

	// P = F P F^T + Q, with F = [I, dt*I; 0, I] in 2x2 blocks, and the
	// white-acceleration process noise.
	p := &k.P
	// Since x and y are decoupled, update the (x,vx) and (y,vy) pairs.
	// Index helpers: state order [x y vx vy].
	// Pair (0,2): entries P[0]=xx, P[2]=x,vx, P[8]=vx,x, P[10]=vx,vx.
	updatePair(p, 0, 2, dt, k.Q)
	// Pair (1,3).
	updatePair(p, 1, 3, dt, k.Q)
}

// updatePair applies the 2x2 CV covariance propagation for state pair
// (i = position index, j = velocity index).
func updatePair(p *[16]float64, i, j int, dt, q float64) {
	pp := p[i*4+i]
	pv := p[i*4+j]
	vp := p[j*4+i]
	vv := p[j*4+j]

	nPP := pp + dt*(pv+vp) + dt*dt*vv
	nPV := pv + dt*vv
	nVP := vp + dt*vv
	nVV := vv

	// Discrete white-noise acceleration.
	dt2 := dt * dt
	nPP += q * dt2 * dt2 / 4
	nPV += q * dt2 * dt / 2
	nVP += q * dt2 * dt / 2
	nVV += q * dt2

	p[i*4+i] = nPP
	p[i*4+j] = nPV
	p[j*4+i] = nVP
	p[j*4+j] = nVV
}

// Update fuses a position measurement z with variance r (per axis).
func (k *KalmanCV) Update(z geo.Point, r float64) {
	if r <= 0 {
		r = 1
	}
	// Decoupled per-axis update (H = [1 0 0 0; 0 1 0 0]).
	k.updateAxis(0, 2, z.X, r)
	k.updateAxis(1, 3, z.Y, r)
}

func (k *KalmanCV) updateAxis(i, j int, z, r float64) {
	p := &k.P
	pp := p[i*4+i]
	pv := p[i*4+j]
	vp := p[j*4+i]
	vv := p[j*4+j]

	s := pp + r
	if s <= 0 {
		return
	}
	kp := pp / s // Kalman gain for position component
	kv := vp / s // gain for velocity component
	innov := z - k.X[i]
	k.X[i] += kp * innov
	k.X[j] += kv * innov

	// P = (I - K H) P for the 2x2 sub-block.
	p[i*4+i] = (1 - kp) * pp
	p[i*4+j] = (1 - kp) * pv
	p[j*4+i] = vp - kv*pp
	p[j*4+j] = vv - kv*pv
}
