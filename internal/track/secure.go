package track

import (
	"sort"

	"iobt/internal/geo"
)

// Secure state estimation (paper §III: "exploitation of physical
// dynamics of sensor observations to enable secure and resilient
// state-estimation and control in the face of data contamination").
// When several sensors observe the same target, a compromised subset
// can inject biased positions; coordinate-wise median fusion tolerates
// any minority of arbitrarily corrupted sensors, where the naive
// average is dragged proportionally to the attacker's bias.

// FuseMean averages redundant detections of one target (the fragile
// baseline).
func FuseMean(dets []Detection) (Detection, bool) {
	if len(dets) == 0 {
		return Detection{}, false
	}
	var x, y, v float64
	for _, d := range dets {
		x += d.Pos.X
		y += d.Pos.Y
		v += d.Var
	}
	n := float64(len(dets))
	return Detection{
		Pos: geo.Point{X: x / n, Y: y / n},
		// Averaging n independent measurements divides variance by n.
		Var:    v / n / n,
		Sensor: dets[0].Sensor,
	}, true
}

// FuseMedian fuses redundant detections with the coordinate-wise
// median: resilient to strictly fewer than half the sensors being
// compromised, regardless of how large their injected bias is.
func FuseMedian(dets []Detection) (Detection, bool) {
	if len(dets) == 0 {
		return Detection{}, false
	}
	xs := make([]float64, len(dets))
	ys := make([]float64, len(dets))
	v := 0.0
	for i, d := range dets {
		xs[i] = d.Pos.X
		ys[i] = d.Pos.Y
		v += d.Var
	}
	return Detection{
		Pos: geo.Point{X: medianOf(xs), Y: medianOf(ys)},
		// The median of n measurements is ~pi/2 less efficient than the
		// mean; approximate its variance accordingly.
		Var:    (v / float64(len(dets))) * 1.57 / float64(len(dets)),
		Sensor: dets[0].Sensor,
	}, true
}

// FlagOutliers returns the indices of detections whose distance from
// the coordinate-wise median exceeds k times the median absolute
// deviation of those distances — the contaminated-sensor report that
// feeds the trust ledger.
func FlagOutliers(dets []Detection, k float64) []int {
	if len(dets) < 3 {
		return nil
	}
	if k <= 0 {
		k = 4
	}
	med, _ := FuseMedian(dets)
	dists := make([]float64, len(dets))
	for i, d := range dets {
		dists[i] = d.Pos.Dist(med.Pos)
	}
	sorted := append([]float64(nil), dists...)
	sort.Float64s(sorted)
	mad := sorted[len(sorted)/2]
	if mad < 1e-9 {
		mad = 1e-9
	}
	var out []int
	for i, d := range dists {
		if d > k*mad {
			out = append(out, i)
		}
	}
	return out
}

func medianOf(v []float64) float64 {
	s := append([]float64(nil), v...)
	sort.Float64s(s)
	n := len(s)
	if n%2 == 1 {
		return s[n/2]
	}
	return (s[n/2-1] + s[n/2]) / 2
}
