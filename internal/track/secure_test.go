package track

import (
	"testing"
	"testing/quick"

	"iobt/internal/geo"
	"iobt/internal/sim"
)

// contaminated builds n detections of a target at truth, the first bad
// of which are attacker-controlled with a large bias.
func contaminated(rng *sim.RNG, truth geo.Point, n, bad int, bias float64) []Detection {
	dets := make([]Detection, 0, n)
	for i := 0; i < n; i++ {
		p := truth.Add(geo.Vec{DX: rng.Norm(0, 2), DY: rng.Norm(0, 2)})
		if i < bad {
			p = p.Add(geo.Vec{DX: bias, DY: -bias})
		}
		dets = append(dets, Detection{Pos: p, Var: 4, Sensor: int32(i)})
	}
	return dets
}

func TestMedianFusionResistsMinorityAttack(t *testing.T) {
	rng := sim.NewRNG(1)
	truth := geo.Point{X: 100, Y: 100}
	dets := contaminated(rng, truth, 9, 4, 500) // 4 of 9 compromised, huge bias
	mean, ok := FuseMean(dets)
	if !ok {
		t.Fatal("mean fusion failed")
	}
	med, ok := FuseMedian(dets)
	if !ok {
		t.Fatal("median fusion failed")
	}
	if mean.Pos.Dist(truth) < 100 {
		t.Errorf("mean unexpectedly resisted the attack: err %.1f", mean.Pos.Dist(truth))
	}
	if d := med.Pos.Dist(truth); d > 10 {
		t.Errorf("median fusion error = %.1f m under 4/9 contamination", d)
	}
}

func TestMedianFusionFailsPastMajority(t *testing.T) {
	rng := sim.NewRNG(2)
	truth := geo.Point{X: 0, Y: 0}
	dets := contaminated(rng, truth, 9, 5, 500) // majority compromised
	med, _ := FuseMedian(dets)
	if med.Pos.Dist(truth) < 100 {
		t.Error("median resisted a majority attack — impossible; check the model")
	}
}

func TestFuseEmpty(t *testing.T) {
	if _, ok := FuseMean(nil); ok {
		t.Error("mean of nothing")
	}
	if _, ok := FuseMedian(nil); ok {
		t.Error("median of nothing")
	}
}

func TestFuseVarianceShrinks(t *testing.T) {
	rng := sim.NewRNG(3)
	dets := contaminated(rng, geo.Point{}, 9, 0, 0)
	mean, _ := FuseMean(dets)
	med, _ := FuseMedian(dets)
	if mean.Var >= dets[0].Var || med.Var >= dets[0].Var {
		t.Errorf("fusion did not reduce variance: mean %.2f median %.2f raw %.2f",
			mean.Var, med.Var, dets[0].Var)
	}
	if med.Var <= mean.Var {
		t.Error("median should be (slightly) less efficient than mean")
	}
}

func TestFlagOutliers(t *testing.T) {
	rng := sim.NewRNG(4)
	dets := contaminated(rng, geo.Point{X: 50, Y: 50}, 9, 2, 300)
	flagged := FlagOutliers(dets, 4)
	if len(flagged) != 2 {
		t.Fatalf("flagged = %v, want the 2 attackers", flagged)
	}
	for _, i := range flagged {
		if i >= 2 {
			t.Errorf("honest sensor %d flagged", i)
		}
	}
	// Clean data: nothing flagged.
	clean := contaminated(rng, geo.Point{}, 9, 0, 0)
	if got := FlagOutliers(clean, 4); len(got) != 0 {
		t.Errorf("clean data flagged: %v", got)
	}
	if FlagOutliers(clean[:2], 4) != nil {
		t.Error("too few detections should flag nothing")
	}
}

// Property: median fusion of an odd, strictly-minority-contaminated set
// always lands within the honest points' bounding box.
func TestMedianFusionBoundingProperty(t *testing.T) {
	prop := func(seed int64, biasRaw uint16) bool {
		rng := sim.NewRNG(seed)
		bias := float64(biasRaw)
		truth := geo.Point{X: 0, Y: 0}
		dets := contaminated(rng, truth, 7, 3, bias)
		med, _ := FuseMedian(dets)
		// Honest samples are N(0,2): the median must stay within their
		// span regardless of bias size.
		minX, maxX := 1e18, -1e18
		minY, maxY := 1e18, -1e18
		for _, d := range dets[3:] {
			minX = minf(minX, d.Pos.X)
			maxX = maxf(maxX, d.Pos.X)
			minY = minf(minY, d.Pos.Y)
			maxY = maxf(maxY, d.Pos.Y)
		}
		// Bias pushes +X/-Y, so the median can touch but not exceed the
		// honest extremes in the attack direction.
		return med.Pos.X <= maxX+1e-9 && med.Pos.Y >= minY-1e-9
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

func minf(a, b float64) float64 {
	if a < b {
		return a
	}
	return b
}

func maxf(a, b float64) float64 {
	if a > b {
		return a
	}
	return b
}
