package track

import (
	"sort"
	"time"

	"iobt/internal/checkpoint"
)

// Track state is command-post state: the post that fuses detections
// holds every hypothesis, so losing the post without a checkpoint means
// every target must be re-acquired and re-confirmed from scratch (track
// fragmentation). Snapshot/Restore make the tracker a
// checkpoint.Snapshotter so warm failover can hand the successor the
// full hypothesis set.

// ConfirmedCount returns the number of confirmed tracks (the harness
// samples it to measure fragmentation across a failover).
func (tr *Tracker) ConfirmedCount() int {
	n := 0
	for _, t := range tr.tracks {
		if t.Confirmed() {
			n++
		}
	}
	return n
}

// Reset discards every hypothesis, counting confirmed tracks as
// dropped. This is what a command-post crash does to an uncheckpointed
// tracker: the state dies with the node.
func (tr *Tracker) Reset() {
	for _, t := range tr.tracks {
		if t.Confirmed() {
			tr.Dropped++
		}
	}
	tr.tracks = nil
}

// SnapshotName implements checkpoint.Snapshotter.
func (tr *Tracker) SnapshotName() string { return "track" }

// Snapshot encodes every hypothesis deterministically (tracks in ID
// order, sensor sets sorted). Observer-side metrics (Dropped) are
// deliberately excluded: they describe what the mission experienced,
// not what the post knew, and restoring them would erase the record of
// a crash.
func (tr *Tracker) Snapshot() []byte {
	e := checkpoint.NewEncoder()
	e.Int(tr.nextID)
	e.Int64(int64(tr.now))
	ordered := make([]*Track, len(tr.tracks))
	copy(ordered, tr.tracks)
	sort.Slice(ordered, func(i, j int) bool { return ordered[i].ID < ordered[j].ID })
	e.Int(len(ordered))
	for _, t := range ordered {
		e.Int(t.ID)
		e.Int64(int64(t.LastUpdate))
		e.Int(t.Hits)
		for _, x := range t.kf.X {
			e.Float64(x)
		}
		for _, p := range t.kf.P {
			e.Float64(p)
		}
		e.Float64(t.kf.Q)
		sensors := make([]int32, 0, len(t.Sensors))
		for s := range t.Sensors {
			sensors = append(sensors, s)
		}
		sort.Slice(sensors, func(i, j int) bool { return sensors[i] < sensors[j] })
		e.Int(len(sensors))
		for _, s := range sensors {
			e.Int64(int64(s))
		}
	}
	return e.Bytes()
}

// Restore replaces the hypothesis set from a snapshot.
func (tr *Tracker) Restore(data []byte) error {
	d := checkpoint.NewDecoder(data)
	nextID := d.Int()
	now := time.Duration(d.Int64())
	n := d.Int()
	if d.Err() != nil {
		return d.Err()
	}
	tracks := make([]*Track, 0, n)
	for i := 0; i < n; i++ {
		t := &Track{kf: &KalmanCV{}, Sensors: map[int32]bool{}}
		t.ID = d.Int()
		t.LastUpdate = time.Duration(d.Int64())
		t.Hits = d.Int()
		for k := range t.kf.X {
			t.kf.X[k] = d.Float64()
		}
		for k := range t.kf.P {
			t.kf.P[k] = d.Float64()
		}
		t.kf.Q = d.Float64()
		ns := d.Int()
		if d.Err() != nil {
			return d.Err()
		}
		for s := 0; s < ns; s++ {
			t.Sensors[int32(d.Int64())] = true
		}
		tracks = append(tracks, t)
	}
	if d.Err() != nil {
		return d.Err()
	}
	tr.nextID = nextID
	tr.now = now
	tr.tracks = tracks
	return nil
}
