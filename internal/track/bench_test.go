package track

// Observe is the E13 per-tick hot path: every sensor batch runs the
// greedy GNN association. The benchmark holds the tracker at a steady
// population (50 targets, 50 detections per tick) so allocs/op reads
// as the per-tick association cost.

import (
	"math"
	"testing"
	"time"

	"iobt/internal/geo"
)

func BenchmarkTrackerObserve(b *testing.B) {
	const targets = 50
	tr := NewTracker(Config{})
	dets := make([]Detection, targets)
	pos := func(i int, t float64) (x, y float64) {
		return float64(i%10)*200 + 10*math.Sin(t+float64(i)),
			float64(i/10)*200 + 10*math.Cos(t+float64(i))
	}
	now := time.Duration(0)
	for tick := 0; tick < 5; tick++ {
		now += time.Second
		for i := range dets {
			x, y := pos(i, now.Seconds())
			dets[i] = Detection{Pos: geo.Point{X: x, Y: y}, Var: 25, Sensor: int32(i % 4)}
		}
		tr.Observe(now, dets)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		now += time.Second
		for j := range dets {
			x, y := pos(j, now.Seconds())
			dets[j] = Detection{Pos: geo.Point{X: x, Y: y}, Var: 25, Sensor: int32(j % 4)}
		}
		tr.Observe(now, dets)
	}
}
