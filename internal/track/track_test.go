package track

import (
	"math"
	"testing"
	"time"

	"iobt/internal/geo"
	"iobt/internal/sim"
)

func TestKalmanConvergesOnLinearMotion(t *testing.T) {
	rng := sim.NewRNG(1)
	// Truth: starts at (0,0), moves at (5,-3) m/s; measurements sigma=3.
	kf := NewKalmanCV(geo.Point{X: 0, Y: 0}, 9, 1)
	truth := geo.Point{}
	vel := geo.Vec{DX: 5, DY: -3}
	for i := 0; i < 100; i++ {
		truth = truth.Add(vel)
		kf.Predict(1)
		z := truth.Add(geo.Vec{DX: rng.Norm(0, 3), DY: rng.Norm(0, 3)})
		kf.Update(z, 9)
	}
	if d := kf.Pos().Dist(truth); d > 3 {
		t.Errorf("position error = %.2f m after 100 updates", d)
	}
	v := kf.Vel()
	if math.Abs(v.DX-5) > 0.5 || math.Abs(v.DY+3) > 0.5 {
		t.Errorf("velocity estimate = %+v, want ~(5,-3)", v)
	}
	// Covariance should have shrunk far below the unknown-velocity prior.
	if kf.PosVar() > 9 {
		t.Errorf("posterior position variance = %.2f", kf.PosVar())
	}
}

func TestKalmanPredictGrowsUncertainty(t *testing.T) {
	kf := NewKalmanCV(geo.Point{}, 9, 2)
	before := kf.PosVar()
	kf.Predict(5)
	if kf.PosVar() <= before {
		t.Error("prediction did not grow position variance")
	}
	kf.Predict(0)  // no-op
	kf.Predict(-1) // no-op
}

func TestKalmanUpdateShrinksUncertainty(t *testing.T) {
	kf := NewKalmanCV(geo.Point{}, 100, 1)
	before := kf.PosVar()
	kf.Update(geo.Point{X: 1, Y: 1}, 4)
	if kf.PosVar() >= before {
		t.Error("update did not shrink variance")
	}
	kf.Update(geo.Point{}, 0) // invalid variance defaults, no panic
}

func TestTrackerFollowsSingleTarget(t *testing.T) {
	rng := sim.NewRNG(2)
	tr := NewTracker(Config{})
	truth := geo.Point{X: 100, Y: 100}
	vel := geo.Vec{DX: 4, DY: 2}
	now := time.Duration(0)
	for i := 0; i < 60; i++ {
		now += time.Second
		truth = truth.Add(vel)
		det := Detection{Pos: truth.Add(geo.Vec{DX: rng.Norm(0, 2), DY: rng.Norm(0, 2)}), Var: 4, Sensor: 1}
		tr.Observe(now, []Detection{det})
	}
	tracks := tr.Tracks()
	if len(tracks) != 1 {
		t.Fatalf("confirmed tracks = %d, want 1", len(tracks))
	}
	if d := tracks[0].Pos().Dist(truth); d > 6 {
		t.Errorf("track error = %.2f m", d)
	}
	if tr.Dropped != 0 {
		t.Errorf("dropped = %d", tr.Dropped)
	}
}

func TestTrackerSeparatesTwoTargets(t *testing.T) {
	rng := sim.NewRNG(3)
	tr := NewTracker(Config{})
	a := geo.Point{X: 0, Y: 0}
	b := geo.Point{X: 400, Y: 0}
	now := time.Duration(0)
	for i := 0; i < 40; i++ {
		now += time.Second
		a = a.Add(geo.Vec{DX: 3, DY: 0})
		b = b.Add(geo.Vec{DX: -3, DY: 0})
		tr.Observe(now, []Detection{
			{Pos: a.Add(geo.Vec{DX: rng.Norm(0, 1), DY: rng.Norm(0, 1)}), Var: 1, Sensor: 1},
			{Pos: b.Add(geo.Vec{DX: rng.Norm(0, 1), DY: rng.Norm(0, 1)}), Var: 1, Sensor: 2},
		})
	}
	if got := len(tr.Tracks()); got != 2 {
		t.Fatalf("confirmed tracks = %d, want 2", got)
	}
	// Each truth position must have a nearby distinct track.
	ta, da := tr.Nearest(a)
	tb, db := tr.Nearest(b)
	if ta == nil || tb == nil || ta.ID == tb.ID {
		t.Fatal("targets share a track")
	}
	if da > 10 || db > 10 {
		t.Errorf("errors = %.1f, %.1f", da, db)
	}
}

func TestTrackerCoastsThroughOcclusion(t *testing.T) {
	rng := sim.NewRNG(4)
	tr := NewTracker(Config{CoastTime: 10 * time.Second})
	truth := geo.Point{X: 0, Y: 0}
	now := time.Duration(0)
	step := func(detect bool) {
		now += time.Second
		truth = truth.Add(geo.Vec{DX: 5, DY: 0})
		var dets []Detection
		if detect {
			dets = append(dets, Detection{Pos: truth.Add(geo.Vec{DX: rng.Norm(0, 1), DY: rng.Norm(0, 1)}), Var: 1, Sensor: 1})
		}
		tr.Observe(now, dets)
	}
	for i := 0; i < 20; i++ {
		step(true)
	}
	id := tr.Tracks()[0].ID
	for i := 0; i < 5; i++ { // occluded for 5s < CoastTime
		step(false)
	}
	for i := 0; i < 10; i++ {
		step(true)
	}
	tracks := tr.Tracks()
	if len(tracks) != 1 {
		t.Fatalf("tracks after occlusion = %d", len(tracks))
	}
	if tracks[0].ID != id {
		t.Error("track identity lost across occlusion (should coast)")
	}
}

func TestTrackerDropsStaleTrack(t *testing.T) {
	tr := NewTracker(Config{CoastTime: 3 * time.Second})
	now := time.Duration(0)
	for i := 0; i < 10; i++ {
		now += time.Second
		tr.Observe(now, []Detection{{Pos: geo.Point{X: float64(i), Y: 0}, Var: 1, Sensor: 1}})
	}
	// Target disappears for good.
	for i := 0; i < 10; i++ {
		now += time.Second
		tr.Observe(now, nil)
	}
	if len(tr.All()) != 0 {
		t.Errorf("stale track survived: %d", len(tr.All()))
	}
	if tr.Dropped != 1 {
		t.Errorf("dropped = %d, want 1", tr.Dropped)
	}
}

func TestTrackerSensorHandoff(t *testing.T) {
	rng := sim.NewRNG(5)
	tr := NewTracker(Config{})
	truth := geo.Point{X: 0, Y: 0}
	now := time.Duration(0)
	for i := 0; i < 40; i++ {
		now += time.Second
		truth = truth.Add(geo.Vec{DX: 10, DY: 0})
		sensor := int32(1)
		if truth.X > 200 {
			sensor = 2 // target crossed into the second sensor's footprint
		}
		tr.Observe(now, []Detection{{Pos: truth.Add(geo.Vec{DX: rng.Norm(0, 1), DY: rng.Norm(0, 1)}), Var: 1, Sensor: sensor}})
	}
	tracks := tr.Tracks()
	if len(tracks) != 1 {
		t.Fatalf("tracks = %d, want 1 across handoff", len(tracks))
	}
	if !tracks[0].Sensors[1] || !tracks[0].Sensors[2] {
		t.Errorf("handoff trail = %v, want both sensors", tracks[0].Sensors)
	}
}

func TestScenarioContinuityImprovesWithSensorDensity(t *testing.T) {
	continuity := func(nSensors int) float64 {
		rng := sim.NewRNG(6)
		var targets []geo.Mobility
		for i := 0; i < 4; i++ {
			targets = append(targets, geo.NewPatrol([]geo.Point{
				{X: 100, Y: float64(150 + 150*i)}, {X: 900, Y: float64(150 + 150*i)},
			}, 8))
		}
		var sensors []Sensor
		cols := nSensors / 2
		for i := 0; i < nSensors; i++ {
			x := 100 + float64(i%cols)*(800/float64(cols-1))
			y := 250.0
			if i >= cols {
				y = 600
			}
			sensors = append(sensors, Sensor{
				ID: int32(i), Mob: &geo.Static{P: geo.Point{X: x, Y: y}},
				Range: 220, Var: 16, DetectProb: 0.8,
			})
		}
		sc := NewScenario(rng, targets, sensors, Config{})
		sc.Run(3*time.Minute, time.Second)
		return sc.Continuity.Mean()
	}
	sparse := continuity(4)
	dense := continuity(10)
	if dense <= sparse {
		t.Errorf("continuity sparse=%.2f dense=%.2f; want improvement", sparse, dense)
	}
	if dense < 0.6 {
		t.Errorf("dense continuity = %.2f, want >= 0.6", dense)
	}
}

func TestScenarioRMSEBounded(t *testing.T) {
	rng := sim.NewRNG(7)
	targets := []geo.Mobility{geo.NewPatrol([]geo.Point{{X: 100, Y: 300}, {X: 700, Y: 300}}, 6)}
	sensors := []Sensor{
		{ID: 1, Mob: &geo.Static{P: geo.Point{X: 250, Y: 300}}, Range: 250, Var: 9, DetectProb: 0.9},
		{ID: 2, Mob: &geo.Static{P: geo.Point{X: 600, Y: 300}}, Range: 250, Var: 9, DetectProb: 0.9},
	}
	// Patrolling targets reverse instantly at waypoints, which a CV
	// filter only survives with maneuver-scale process noise (the
	// standard tuning rule: q ~ max expected acceleration squared).
	sc := NewScenario(rng, targets, sensors, Config{ProcessNoise: 36})
	sc.Run(4*time.Minute, time.Second)
	if sc.Continuity.Mean() < 0.8 {
		t.Errorf("continuity = %.2f", sc.Continuity.Mean())
	}
	if sc.RMSE.Mean() > 12 {
		t.Errorf("mean error = %.2f m (measurement sigma is 3)", sc.RMSE.Mean())
	}
	if sc.Detections.Value() == 0 {
		t.Error("no detections")
	}
	// Handoff happened: the single confirmed track saw both sensors.
	tracks := sc.Tracker().Tracks()
	if len(tracks) == 1 && (!tracks[0].Sensors[1] || !tracks[0].Sensors[2]) {
		t.Error("no sensor handoff recorded")
	}
}

func TestFixesExport(t *testing.T) {
	tr := NewTracker(Config{})
	rng := sim.NewRNG(3)
	// Feed one target enough detections to confirm it.
	for i := 0; i < 5; i++ {
		now := time.Duration(i) * time.Second
		tr.Observe(now, []Detection{{
			Pos:    geo.Point{X: 100 + 5*float64(i) + rng.Norm(0, 1), Y: 200 + rng.Norm(0, 1)},
			Var:    4,
			Sensor: 1,
		}})
	}
	fixes := tr.Fixes()
	if len(fixes) == 0 {
		t.Fatal("no fixes exported")
	}
	var confirmed int
	for i, f := range fixes {
		if i > 0 && fixes[i-1].ID >= f.ID {
			t.Fatal("fixes not ascending by ID")
		}
		if f.Confirmed {
			confirmed++
			if f.Hits < 3 {
				t.Errorf("confirmed fix with %d hits", f.Hits)
			}
			if math.Abs(f.Pos.X-120) > 20 || math.Abs(f.Pos.Y-200) > 20 {
				t.Errorf("fix position %v far from truth", f.Pos)
			}
		}
	}
	if confirmed == 0 {
		t.Error("expected at least one confirmed fix")
	}
}
