package track

import (
	"math"
	"sort"
	"time"

	"iobt/internal/geo"
)

// Detection is one noisy position report from a sensor.
type Detection struct {
	Pos geo.Point
	// Var is the per-axis measurement variance (sensor accuracy).
	Var float64
	// Sensor identifies the reporting asset (for handoff accounting).
	Sensor int32
}

// Track is one maintained target hypothesis.
type Track struct {
	ID int
	kf *KalmanCV
	// LastUpdate is the virtual time of the last associated detection.
	LastUpdate time.Duration
	// Hits counts associated detections; tracks below ConfirmHits are
	// tentative.
	Hits int
	// Sensors lists distinct sensors that contributed (handoff trail).
	Sensors map[int32]bool
}

// Pos returns the track's current position estimate.
func (t *Track) Pos() geo.Point { return t.kf.Pos() }

// Vel returns the track's velocity estimate.
func (t *Track) Vel() geo.Vec { return t.kf.Vel() }

// Confirmed reports whether the track has enough support.
func (t *Track) Confirmed() bool { return t.Hits >= 3 }

// Config parameterizes the tracker.
type Config struct {
	// Gate is the association gate in standard deviations (default 4).
	Gate float64
	// CoastTime keeps an unassociated track alive this long (default 5s).
	CoastTime time.Duration
	// ProcessNoise is the Kalman Q (default 2).
	ProcessNoise float64
}

// assocPair is one gated track/detection candidate in the greedy GNN
// association.
type assocPair struct {
	ti, di int
	d      float64
}

// assocPairs sorts candidates closest-first with deterministic
// (ti, di) tie-breaks. It carries its own sort.Interface (on the
// pointer, so sorting boxes no slice header) instead of sort.Slice,
// which allocates a closure and a reflect-based swapper per call —
// Observe is the E13 per-tick hot path.
type assocPairs []assocPair

func (p *assocPairs) Len() int      { return len(*p) }
func (p *assocPairs) Swap(i, j int) { (*p)[i], (*p)[j] = (*p)[j], (*p)[i] }
func (p *assocPairs) Less(i, j int) bool {
	a, b := (*p)[i], (*p)[j]
	if a.d != b.d {
		return a.d < b.d
	}
	if a.ti != b.ti {
		return a.ti < b.ti
	}
	return a.di < b.di
}

// Tracker maintains multi-target tracks from detection batches.
type Tracker struct {
	cfg    Config
	tracks []*Track
	nextID int
	now    time.Duration

	// Association scratch, reused across Observe calls so the per-tick
	// steady state allocates nothing.
	pairBuf assocPairs
	usedT   []bool
	usedD   []bool

	// IDSwitches counts confirmed tracks dropped while their target was
	// still being detected nearby (continuity failures are counted by
	// the scenario harness; this counts hard drops).
	Dropped int
}

// NewTracker returns an empty tracker.
func NewTracker(cfg Config) *Tracker {
	if cfg.Gate <= 0 {
		cfg.Gate = 4
	}
	if cfg.CoastTime <= 0 {
		cfg.CoastTime = 5 * time.Second
	}
	if cfg.ProcessNoise <= 0 {
		cfg.ProcessNoise = 2
	}
	return &Tracker{cfg: cfg}
}

// Tracks returns the confirmed tracks.
func (tr *Tracker) Tracks() []*Track {
	out := make([]*Track, 0, len(tr.tracks))
	for _, t := range tr.tracks {
		if t.Confirmed() {
			out = append(out, t)
		}
	}
	return out
}

// All returns every track including tentative ones.
func (tr *Tracker) All() []*Track { return tr.tracks }

// Fix is a point-in-time export of one track for replication: the value
// side of the common operational picture's LWW registers (internal/cop).
type Fix struct {
	ID        int
	Pos       geo.Point
	Vel       geo.Vec
	Hits      int
	Confirmed bool
}

// Fixes exports every track, tentative ones included, ascending by ID.
func (tr *Tracker) Fixes() []Fix {
	out := make([]Fix, 0, len(tr.tracks))
	for _, t := range tr.tracks {
		out = append(out, Fix{ID: t.ID, Pos: t.Pos(), Vel: t.Vel(), Hits: t.Hits, Confirmed: t.Confirmed()})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].ID < out[j].ID })
	return out
}

// Observe advances all tracks to now, associates the detection batch
// (greedy nearest-neighbor within the gate), updates matched tracks,
// spawns tentative tracks for unmatched detections, and drops tracks
// that have coasted too long.
//
//iobt:hot
func (tr *Tracker) Observe(now time.Duration, detections []Detection) {
	dt := (now - tr.now).Seconds()
	tr.now = now
	for _, t := range tr.tracks {
		t.kf.Predict(dt)
	}

	// Build candidate pairs within gates, closest first (greedy GNN).
	// Scratch buffers persist on the tracker: E13 calls Observe every
	// tick, and regrowing pair/marker storage per call was the top
	// allocator in the tracking profile.
	pairs := tr.pairBuf[:0]
	for ti, t := range tr.tracks {
		gate := tr.cfg.Gate * math.Sqrt(t.kf.PosVar()+1)
		for di := range detections {
			d := t.kf.Pos().Dist(detections[di].Pos)
			if d <= gate {
				pairs = append(pairs, assocPair{ti, di, d})
			}
		}
	}
	tr.pairBuf = pairs
	sort.Sort(&tr.pairBuf)
	usedT := growMarkers(&tr.usedT, len(tr.tracks))
	usedD := growMarkers(&tr.usedD, len(detections))
	for _, p := range pairs {
		if usedT[p.ti] || usedD[p.di] {
			continue
		}
		usedT[p.ti] = true
		usedD[p.di] = true
		t := tr.tracks[p.ti]
		det := detections[p.di]
		t.kf.Update(det.Pos, det.Var)
		t.LastUpdate = now
		t.Hits++
		t.Sensors[det.Sensor] = true
	}

	// Spawn tentative tracks for unmatched detections — except those
	// inside an existing track's gate: when two sensors detect the same
	// target in an overlap zone, the surplus detection must not spawn a
	// duplicate track that would steal future detections and kill the
	// original (track-identity churn at handoff boundaries).
	for di := range detections {
		if usedD[di] {
			continue
		}
		det := detections[di]
		duplicate := false
		for _, t := range tr.tracks {
			gate := tr.cfg.Gate * math.Sqrt(t.kf.PosVar()+1)
			if t.kf.Pos().Dist(det.Pos) <= gate {
				duplicate = true
				break
			}
		}
		if duplicate {
			continue
		}
		// Spawning is the rare path by construction: it runs once per new
		// target entering the gate, not once per detection — steady-state
		// ticks re-associate into existing tracks and allocate nothing.
		//iobt:allow hotalloc track spawn is per-new-target, not per-event: steady-state ticks update existing tracks allocation-free
		t := &Track{
			ID:         tr.nextID,
			kf:         NewKalmanCV(det.Pos, det.Var, tr.cfg.ProcessNoise), //iobt:allow hotalloc one filter per spawned track, living as long as the track
			LastUpdate: now,
			Hits:       1,
			Sensors:    map[int32]bool{det.Sensor: true}, //iobt:allow hotalloc one sensor-set per spawned track, living as long as the track
		}
		tr.nextID++
		tr.tracks = append(tr.tracks, t)
	}

	// Drop stale tracks.
	keep := tr.tracks[:0]
	for _, t := range tr.tracks {
		if now-t.LastUpdate <= tr.cfg.CoastTime {
			keep = append(keep, t)
			continue
		}
		if t.Confirmed() {
			tr.Dropped++
		}
	}
	tr.tracks = keep
}

// growMarkers resizes *buf to n cleared entries, reallocating only
// when the retained capacity is outgrown.
//
//iobt:hot
func growMarkers(buf *[]bool, n int) []bool {
	s := *buf
	if cap(s) < n {
		//iobt:allow hotalloc grow-only: reallocates when the track or detection count outgrows every previous tick, then the buffer is reused forever
		s = make([]bool, n)
	} else {
		s = s[:n]
		clear(s)
	}
	*buf = s
	return s
}

// Nearest returns the confirmed track closest to p and its distance, or
// nil when no confirmed track exists.
func (tr *Tracker) Nearest(p geo.Point) (*Track, float64) {
	var best *Track
	bestD := 0.0
	for _, t := range tr.tracks {
		if !t.Confirmed() {
			continue
		}
		d := t.Pos().Dist(p)
		if best == nil || d < bestD {
			best, bestD = t, d
		}
	}
	return best, bestD
}
