package track

import (
	"bytes"
	"testing"
	"time"

	"iobt/internal/geo"
)

func TestTrackerSnapshotRoundTrip(t *testing.T) {
	tr := NewTracker(Config{})
	// Feed two targets long enough to confirm both.
	for i := 0; i < 5; i++ {
		now := time.Duration(i) * time.Second
		tr.Observe(now, []Detection{
			{Pos: geo.Point{X: 100 + float64(i)*5, Y: 200}, Var: 4, Sensor: 1},
			{Pos: geo.Point{X: 800, Y: 600 - float64(i)*3}, Var: 4, Sensor: 2},
		})
	}
	if tr.ConfirmedCount() != 2 {
		t.Fatalf("confirmed = %d, want 2", tr.ConfirmedCount())
	}

	snap := tr.Snapshot()
	restored := NewTracker(Config{})
	if err := restored.Restore(snap); err != nil {
		t.Fatalf("Restore: %v", err)
	}
	if restored.ConfirmedCount() != 2 {
		t.Fatalf("restored confirmed = %d, want 2", restored.ConfirmedCount())
	}
	if !bytes.Equal(restored.Snapshot(), snap) {
		t.Error("restored tracker snapshot differs from original")
	}

	// The restored tracker must continue identically to the original:
	// same association, same estimates.
	next := []Detection{{Pos: geo.Point{X: 130, Y: 200}, Var: 4, Sensor: 1}}
	tr.Observe(6*time.Second, next)
	restored.Observe(6*time.Second, next)
	if !bytes.Equal(tr.Snapshot(), restored.Snapshot()) {
		t.Error("original and restored trackers diverged after identical input")
	}
}

func TestTrackerResetCountsDrops(t *testing.T) {
	tr := NewTracker(Config{})
	for i := 0; i < 5; i++ {
		tr.Observe(time.Duration(i)*time.Second,
			[]Detection{{Pos: geo.Point{X: 100, Y: 200}, Var: 4, Sensor: 1}})
	}
	if tr.ConfirmedCount() != 1 {
		t.Fatalf("confirmed = %d, want 1", tr.ConfirmedCount())
	}
	tr.Reset()
	if tr.ConfirmedCount() != 0 || len(tr.All()) != 0 {
		t.Error("Reset should discard every hypothesis")
	}
	if tr.Dropped != 1 {
		t.Errorf("Dropped = %d after Reset, want 1", tr.Dropped)
	}
}
