package track

import (
	"math"
	"time"

	"iobt/internal/geo"
	"iobt/internal/sim"
)

// Sensor is one detection source: a fixed or mobile asset with a
// footprint, accuracy, and detection probability.
type Sensor struct {
	ID int32
	// Mob gives the sensor's (possibly moving) position.
	Mob geo.Mobility
	// Range is the detection footprint radius.
	Range float64
	// Var is the per-axis measurement variance.
	Var float64
	// DetectProb is the per-tick detection probability for a target in
	// range.
	DetectProb float64
}

// Scenario drives targets and sensors against a Tracker and scores the
// result: the wide-area persistent surveillance loop.
type Scenario struct {
	rng     *sim.RNG
	targets []geo.Mobility
	sensors []Sensor
	tracker *Tracker
	now     time.Duration

	// ContinuityWindow is how close a confirmed track must be to count
	// as covering a target (default 50 m).
	ContinuityWindow float64

	// RMSE accumulates per-tick tracking error for covered targets.
	RMSE sim.Series
	// Continuity accumulates the per-tick fraction of targets covered by
	// a confirmed track.
	Continuity sim.Series
	// Detections counts raw sensor detections.
	Detections sim.Counter
}

// NewScenario builds a scenario over the given ground-truth targets and
// sensors.
func NewScenario(rng *sim.RNG, targets []geo.Mobility, sensors []Sensor, cfg Config) *Scenario {
	ts := make([]geo.Mobility, len(targets))
	copy(ts, targets)
	ss := make([]Sensor, len(sensors))
	copy(ss, sensors)
	return &Scenario{
		rng:              rng,
		targets:          ts,
		sensors:          ss,
		tracker:          NewTracker(cfg),
		ContinuityWindow: 50,
	}
}

// Tracker exposes the underlying tracker.
func (s *Scenario) Tracker() *Tracker { return s.tracker }

// Tick advances ground truth by dt, generates detections, feeds the
// tracker, and scores coverage.
func (s *Scenario) Tick(dt time.Duration) {
	s.now += dt
	// Ground truth moves.
	truth := make([]geo.Point, len(s.targets))
	for i, m := range s.targets {
		truth[i] = m.Step(dt)
	}
	// Sensors move and detect.
	var dets []Detection
	for i := range s.sensors {
		sn := &s.sensors[i]
		pos := sn.Mob.Step(dt)
		for _, tp := range truth {
			if pos.Dist(tp) > sn.Range {
				continue
			}
			if !s.rng.Bool(sn.DetectProb) {
				continue
			}
			noise := geo.Vec{
				DX: s.rng.Norm(0, sqrt(sn.Var)),
				DY: s.rng.Norm(0, sqrt(sn.Var)),
			}
			dets = append(dets, Detection{Pos: tp.Add(noise), Var: sn.Var, Sensor: sn.ID})
			s.Detections.Inc()
		}
	}
	s.tracker.Observe(s.now, dets)

	// Score: each target covered by a confirmed track within the window?
	covered := 0
	for _, tp := range truth {
		if tr, d := s.tracker.Nearest(tp); tr != nil && d <= s.ContinuityWindow {
			covered++
			s.RMSE.Add(d)
		}
	}
	if len(truth) > 0 {
		s.Continuity.Add(float64(covered) / float64(len(truth)))
	}
}

// Run ticks the scenario for the given duration at the given cadence.
func (s *Scenario) Run(total, dt time.Duration) {
	for elapsed := time.Duration(0); elapsed < total; elapsed += dt {
		s.Tick(dt)
	}
}

func sqrt(v float64) float64 {
	if v <= 0 {
		return 0
	}
	return math.Sqrt(v)
}

// DisableSensor zeroes a sensor's detection probability (battery death
// or destruction mid-mission). Unknown IDs are ignored.
func (s *Scenario) DisableSensor(id int32) {
	for i := range s.sensors {
		if s.sensors[i].ID == id {
			s.sensors[i].DetectProb = 0
		}
	}
}
