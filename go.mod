module iobt

go 1.22
