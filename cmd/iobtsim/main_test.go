package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func TestRunBadArgs(t *testing.T) {
	cases := []struct {
		name string
		args []string
		want string
	}{
		{"bad terrain", []string{"-terrain", "lunar"}, "unknown terrain"},
		{"bad command", []string{"-command", "anarchy"}, "unknown command"},
		{"bad flag", []string{"-nope"}, "flag provided"},
		{"missing spec", []string{"-spec", "/nonexistent/x.spec"}, "read spec"},
	}
	for _, tc := range cases {
		err := run(tc.args)
		if err == nil || !strings.Contains(err.Error(), tc.want) {
			t.Errorf("%s: err = %v, want mention of %q", tc.name, err, tc.want)
		}
	}
}

func TestRunShortMission(t *testing.T) {
	if err := run([]string{"-minutes", "1", "-assets", "200", "-rate", "10"}); err != nil {
		t.Fatalf("short mission: %v", err)
	}
}

func TestRunWithSpecFile(t *testing.T) {
	dir := t.TempDir()
	spec := filepath.Join(dir, "m.spec")
	content := "mission \"t\"\narea (200,200)-(1000,1000)\ncover 40%\ncommand intent\nrate 10/min\n"
	if err := os.WriteFile(spec, []byte(content), 0o600); err != nil {
		t.Fatal(err)
	}
	if err := run([]string{"-minutes", "1", "-assets", "200", "-spec", spec}); err != nil {
		t.Fatalf("spec mission: %v", err)
	}
	// A malformed spec surfaces the parse error.
	bad := filepath.Join(dir, "bad.spec")
	_ = os.WriteFile(bad, []byte("cover 40%"), 0o600)
	if err := run([]string{"-spec", bad}); err == nil {
		t.Fatal("malformed spec accepted")
	}
}
