package main

import (
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"iobt/internal/verify"
)

func TestRunBadArgs(t *testing.T) {
	cases := []struct {
		name string
		args []string
		want string
	}{
		{"bad terrain", []string{"-terrain", "lunar"}, "unknown terrain"},
		{"bad command", []string{"-command", "anarchy"}, "unknown command"},
		{"bad flag", []string{"-nope"}, "flag provided"},
		{"missing spec", []string{"-spec", "/nonexistent/x.spec"}, "read spec"},
	}
	for _, tc := range cases {
		err := run(tc.args)
		if err == nil || !strings.Contains(err.Error(), tc.want) {
			t.Errorf("%s: err = %v, want mention of %q", tc.name, err, tc.want)
		}
	}
}

func TestRunShortMission(t *testing.T) {
	if err := run([]string{"-minutes", "1", "-assets", "200", "-rate", "10"}); err != nil {
		t.Fatalf("short mission: %v", err)
	}
}

func TestRunWithSpecFile(t *testing.T) {
	dir := t.TempDir()
	spec := filepath.Join(dir, "m.spec")
	content := "mission \"t\"\narea (200,200)-(1000,1000)\ncover 40%\ncommand intent\nrate 10/min\n"
	if err := os.WriteFile(spec, []byte(content), 0o600); err != nil {
		t.Fatal(err)
	}
	if err := run([]string{"-minutes", "1", "-assets", "200", "-spec", spec}); err != nil {
		t.Fatalf("spec mission: %v", err)
	}
	// A malformed spec surfaces the parse error.
	bad := filepath.Join(dir, "bad.spec")
	_ = os.WriteFile(bad, []byte("cover 40%"), 0o600)
	if err := run([]string{"-spec", bad}); err == nil {
		t.Fatal("malformed spec accepted")
	}
}

// TestRunGossipOverlay pins the -gossip path: the COP replication
// overlay runs under the full invariant registry (gossip conservation,
// picture monotonicity) and a violation would fail the run via -verify.
func TestRunGossipOverlay(t *testing.T) {
	if err := run([]string{"-minutes", "1", "-assets", "200", "-rate", "10", "-gossip", "-verify"}); err != nil {
		t.Fatalf("gossip mission: %v", err)
	}
}

// TestRunGossipWithHealPlan drives the partition/heal DSL verbs through
// the CLI with the overlay armed: the unbounded cut must not trip any
// invariant, and the heal must let the run complete cleanly.
func TestRunGossipWithHealPlan(t *testing.T) {
	dir := t.TempDir()
	plan := filepath.Join(dir, "heal.txt")
	content := "plan heal\npartition at=10s x=750\nheal at=40s\n"
	if err := os.WriteFile(plan, []byte(content), 0o600); err != nil {
		t.Fatal(err)
	}
	if err := run([]string{"-minutes", "1", "-assets", "200", "-rate", "10",
		"-gossip", "-verify", "-faults", plan}); err != nil {
		t.Fatalf("gossip mission under heal plan: %v", err)
	}
}

// TestVerifyViolationExitBehavior pins the -verify exit contract: an
// invariant violation must surface as errVerification and exit code 2 —
// in the plain path and in the fault-plan path, where the harness
// drives the check cadence — while the same violation without -verify
// is reported but does not fail the run.
func TestVerifyViolationExitBehavior(t *testing.T) {
	calls := 0
	testExtraInvariants = func() []verify.Invariant {
		return []verify.Invariant{{Name: "test.always-fails", Check: func() error {
			calls++
			return fmt.Errorf("forced violation (check %d)", calls)
		}}}
	}
	defer func() { testExtraInvariants = nil }()

	base := []string{"-minutes", "1", "-assets", "200", "-rate", "10"}

	// Without -verify: reported, but exit 0.
	if err := run(base); err != nil {
		t.Fatalf("violation without -verify failed the run: %v", err)
	}

	// Plain path with -verify: errVerification, exit code 2.
	err := run(append(base, "-verify"))
	if !errors.Is(err, errVerification) {
		t.Fatalf("plain -verify error = %v, want errVerification", err)
	}
	if exitCode(err) != 2 {
		t.Errorf("exit code = %d, want 2", exitCode(err))
	}

	// Fault-plan path with -verify: the harness cadence (plus the final
	// horizon sweep) must reach the same non-zero exit.
	err = run(append(base, "-faults", "standard", "-verify"))
	if !errors.Is(err, errVerification) {
		t.Fatalf("fault-plan -verify error = %v, want errVerification", err)
	}
	if exitCode(err) != 2 {
		t.Errorf("fault-plan exit code = %d, want 2", exitCode(err))
	}

	// Non-verification failures keep exit code 1.
	if got := exitCode(errors.New("boom")); got != 1 {
		t.Errorf("generic error exit code = %d, want 1", got)
	}
}
