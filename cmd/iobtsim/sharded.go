package main

// The -shards path: instead of the classic sequential mission, run the
// COP dissemination scenario on the spatially sharded engine
// (internal/sim.Sharded via mesh.RunShardScenario). The shard count is
// a pure performance knob — -replay-verify proves it by running the
// same seed at 1 shard and at -shards shards and diffing the journals
// byte for byte.

import (
	"fmt"
	"hash/fnv"
	"time"

	"iobt/internal/checkpoint"
	"iobt/internal/cop"
	"iobt/internal/geo"
	"iobt/internal/mesh"
)

// shardedScenario derives the dissemination workload from the mission
// flags: the asset count becomes the node population and the mission
// duration the virtual horizon. Publishers gossip their CRDT picture
// replicas; receivers merge them, so the run exercises mesh, cop, and
// the sharded engine together.
func shardedScenario(assets int, horizon time.Duration) mesh.ShardScenario {
	return mesh.ShardScenario{
		Nodes:            assets,
		Horizon:          horizon,
		AntiEntropyEvery: 15 * time.Second,
		TTL:              64,
	}
}

// shardedOnce runs the scenario at one shard count and returns the
// result plus a fingerprint covering the overlay digest and every
// node's merged COP picture digest in ID order.
func shardedOnce(seed int64, shards, assets int, horizon time.Duration) (*mesh.ShardResult, uint64, error) {
	sc := shardedScenario(assets, horizon)
	pics := make([]*cop.Picture, sc.Nodes)
	for i := range pics {
		pics[i] = cop.NewPicture(mesh.NodeID(i))
	}
	sc.Payload = func(origin mesh.NodeID, seq uint64, at time.Duration) []byte {
		p := pics[origin]
		p.Cover(cop.Cell{X: int32(seq), Y: int32(origin)})
		p.ObserveTrack(int(seq), cop.TrackFix{Pos: geo.Point{X: float64(origin), Y: float64(seq)}}, at)
		return p.Encode()
	}
	sc.OnDeliver = func(node mesh.NodeID, key mesh.GossipKey, data []byte, at time.Duration) {
		_ = pics[node].MergeEncoded(data) //iobt:allow errdrop a frame that fails to decode cannot regress the replica; delivery counting happens in the overlay
	}
	res, err := mesh.RunShardScenario(seed, shards, sc)
	if err != nil {
		return nil, 0, err
	}
	h := fnv.New64a()
	fmt.Fprintf(h, "%016x|%d|%d|%d|%d", res.Digest, res.Published, res.Delivered, res.Events, res.ClampedSends)
	for i, p := range pics {
		fmt.Fprintf(h, "|%d:%x", i, p.Digest())
	}
	return res, h.Sum64(), nil
}

func runSharded(seed int64, shards, assets int, horizon time.Duration, replay, verif bool) error {
	if assets < 2 {
		return fmt.Errorf("sharded run needs at least 2 assets, got %d", assets)
	}
	if replay {
		// Cross-shard-count equivalence: the 1-shard reference and the
		// requested shard count must log byte-identical journals.
		runAt := func(n int) func(*checkpoint.Journal) {
			return func(j *checkpoint.Journal) {
				res, fp, err := shardedOnce(seed, n, assets, horizon)
				if err != nil {
					j.Logf(0, "error: %v", err)
					return
				}
				j.Logf(0, "published=%d delivered=%d dup=%d repairs=%d ratio=%.6f events=%d clamped=%d violations=%d fingerprint=%016x",
					res.Published, res.Delivered, res.Duplicates, res.Repairs,
					res.DeliveryRatio, res.Events, res.ClampedSends, len(res.Violations), fp)
			}
		}
		plan := fmt.Sprintf("sharded assets=%d shards=1 vs %d", assets, shards)
		if div := checkpoint.VerifyEquivalence(seed, plan, runAt(1), runAt(shards)); div != nil {
			return fmt.Errorf("%w: shard counts diverged: %s", errVerification, div.Error())
		}
		fmt.Printf("cross-shard verification OK: 1-shard and %d-shard runs produced byte-identical journals\n", shards)
		return nil
	}

	start := time.Now() //iobt:allow detrand wall-clock throughput reporting for the host run, never read inside the simulated world
	res, fp, err := shardedOnce(seed, shards, assets, horizon)
	if err != nil {
		return err
	}
	wall := time.Since(start) //iobt:allow detrand same wall-clock throughput measurement as above

	fmt.Printf("sharded engine: %d shards, %d assets, horizon %s\n", res.Shards, res.Nodes, horizon)
	fmt.Printf("  published=%d delivered=%d duplicates=%d repairs=%d dropped=%d\n",
		res.Published, res.Delivered, res.Duplicates, res.Repairs, res.DroppedDead)
	fmt.Printf("  delivery ratio:   %.3f\n", res.DeliveryRatio)
	fmt.Printf("  events:           %d (%.0f events/s over %s wall)\n",
		res.Events, float64(res.Events)/wall.Seconds(), wall.Round(time.Millisecond))
	fmt.Printf("  clamped sends:    %d\n", res.ClampedSends)
	fmt.Printf("  violations:       %d\n", len(res.Violations))
	for _, v := range res.Violations {
		fmt.Printf("    %s\n", v)
	}
	fmt.Printf("  fingerprint: %016x\n", fp)
	if verif && len(res.Violations) > 0 {
		return fmt.Errorf("%w: %d conservation violations", errVerification, len(res.Violations))
	}
	return nil
}
