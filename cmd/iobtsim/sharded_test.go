package main

import (
	"errors"
	"testing"
	"time"
)

// TestShardedFingerprintInvariance pins the CLI-level determinism
// contract: the printed fingerprint — overlay digest plus every node's
// merged COP picture digest — is identical for 1, 2, and 4 shards.
func TestShardedFingerprintInvariance(t *testing.T) {
	ref, refFP, err := shardedOnce(9, 1, 250, 2*time.Minute)
	if err != nil {
		t.Fatal(err)
	}
	if len(ref.Violations) != 0 {
		t.Fatalf("reference run violations: %v", ref.Violations)
	}
	if ref.Delivered == 0 {
		t.Fatal("reference run delivered nothing")
	}
	for _, shards := range []int{2, 4} {
		res, fp, err := shardedOnce(9, shards, 250, 2*time.Minute)
		if err != nil {
			t.Fatalf("shards=%d: %v", shards, err)
		}
		if fp != refFP || res.Digest != ref.Digest {
			t.Errorf("shards=%d fingerprint %016x digest %016x, 1-shard reference %016x / %016x",
				shards, fp, res.Digest, refFP, ref.Digest)
		}
		if len(res.Violations) != 0 {
			t.Errorf("shards=%d violations: %v", shards, res.Violations)
		}
	}
}

// TestRunShardedFlags drives the -shards path through the real flag
// surface: a plain run, a -replay-verify equivalence run, and the
// argument validation error.
func TestRunShardedFlags(t *testing.T) {
	if err := run([]string{"-shards", "2", "-assets", "150", "-minutes", "1"}); err != nil {
		t.Fatalf("plain sharded run: %v", err)
	}
	if err := run([]string{"-shards", "3", "-assets", "150", "-minutes", "1", "-replay-verify"}); err != nil {
		t.Fatalf("sharded replay-verify: %v", err)
	}
	err := run([]string{"-shards", "2", "-assets", "1"})
	if err == nil {
		t.Fatal("degenerate asset count accepted")
	}
	if errors.Is(err, errVerification) {
		t.Fatalf("argument error misclassified as verification failure: %v", err)
	}
}
