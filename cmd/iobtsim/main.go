// Command iobtsim runs one IoBT mission scenario end to end: build a
// battlefield world, synthesize a composite asset for the mission goal,
// execute with reflexive adaptation under optional jamming and churn,
// and print the mission metrics.
//
// Usage:
//
//	iobtsim -assets 500 -command intent -minutes 10
//	iobtsim -command hierarchy -levels 4 -jam -terrain urban
//	iobtsim -command hierarchy -reliable -degrade -faults standard
//	iobtsim -faults plan.txt             # custom fault plan in the DSL
//	iobtsim -checkpoint 15s -faults plan.txt   # warm-failover-capable run
//	iobtsim -faults standard -replay-verify    # run twice, diff decision logs
//	iobtsim -faults standard -verify           # arm the invariant registry, fail on violation
//	iobtsim -gossip -verify                    # replicate the COP over epidemic gossip, CRDT invariants armed
//	iobtsim -shards 4 -assets 5000             # spatially sharded engine: COP dissemination on 4 parallel shards
//	iobtsim -shards 8 -replay-verify           # prove the 1-shard and 8-shard runs are byte-identical
package main

import (
	"errors"
	"flag"
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"
	"sort"
	"time"

	"iobt/internal/asset"
	"iobt/internal/attack"
	"iobt/internal/checkpoint"
	"iobt/internal/cop"
	"iobt/internal/core"
	"iobt/internal/fault"
	"iobt/internal/geo"
	"iobt/internal/intent"
	"iobt/internal/mesh"
	"iobt/internal/verify"
)

// errVerification marks a run that completed but failed verification
// (-verify violations or a -replay-verify divergence). main maps it to
// a distinct exit code so harnesses can tell "the mission is wrong"
// from "the tool could not run".
var errVerification = errors.New("verification failed")

// testExtraInvariants, when set by tests, returns additional invariants
// armed alongside the mission set — the only way to force a violation
// deterministically without breaking the simulation itself.
var testExtraInvariants func() []verify.Invariant

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "iobtsim:", err)
		os.Exit(exitCode(err))
	}
}

// exitCode maps a run error to the process exit status: 2 for a
// verification failure, 1 for everything else.
func exitCode(err error) int {
	if errors.Is(err, errVerification) {
		return 2
	}
	return 1
}

func run(args []string) error {
	fs := flag.NewFlagSet("iobtsim", flag.ContinueOnError)
	var (
		seed    = fs.Int64("seed", 1, "deterministic seed")
		assets  = fs.Int("assets", 500, "approximate asset count")
		terrain = fs.String("terrain", "open", "terrain: open|urban|sparse")
		size    = fs.Float64("size", 1500, "map side length (m)")
		command = fs.String("command", "intent", "command model: intent|hierarchy")
		levels  = fs.Int("levels", 3, "hierarchy depth (hierarchy only)")
		minutes = fs.Int("minutes", 10, "simulated mission duration")
		rate    = fs.Float64("rate", 20, "incidents per simulated minute")
		jam     = fs.Bool("jam", false, "activate a central jammer at t=2min")
		churn   = fs.Bool("churn", false, "enable asset churn (2%/min failures)")
		spec    = fs.String("spec", "", "mission spec file in the intent DSL (overrides -command/-levels/-rate)")
		faults  = fs.String("faults", "", `fault plan: "standard" or a plan file in the fault DSL`)
		degrade = fs.Bool("degrade", false, "enable graceful-degradation reflexes (command fallback, coverage relaxation)")
		reliab  = fs.Bool("reliable", false, "carry command traffic over the ARQ layer")
		ckEvery = fs.Duration("checkpoint", 0, "checkpoint cadence (0 disables; enables `failover warm` in fault plans)")
		replay  = fs.Bool("replay-verify", false, "run the scenario twice and diff the decision journals (determinism check)")
		verif   = fs.Bool("verify", false, "arm the full invariant registry during the run and exit nonzero on any violation")
		gossip  = fs.Bool("gossip", false, "replicate the common operational picture over an epidemic gossip overlay among composite members")
		shards  = fs.Int("shards", 0, "run the spatially sharded engine with this many shards (COP dissemination scenario; 0 = classic sequential mission)")
		cpuProf = fs.String("cpuprofile", "", "write a CPU profile of the run to this file (pprof format)")
		memProf = fs.String("memprofile", "", "write an allocation profile at exit to this file (pprof format)")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *cpuProf != "" {
		f, err := os.Create(*cpuProf)
		if err != nil {
			return fmt.Errorf("cpuprofile: %w", err)
		}
		defer f.Close()
		if err := pprof.StartCPUProfile(f); err != nil {
			return fmt.Errorf("cpuprofile: %w", err)
		}
		defer pprof.StopCPUProfile()
	}
	if *memProf != "" {
		f, err := os.Create(*memProf)
		if err != nil {
			return fmt.Errorf("memprofile: %w", err)
		}
		// The alloc_space profile is the one the zero-alloc work reads:
		// it records every allocation since start, not just live heap.
		defer func() {
			runtime.GC()
			if err := pprof.Lookup("allocs").WriteTo(f, 0); err != nil {
				fmt.Fprintln(os.Stderr, "iobtsim: memprofile:", err)
			}
			f.Close()
		}()
	}
	if *shards > 0 {
		return runSharded(*seed, *shards, *assets, time.Duration(*minutes)*time.Minute, *replay, *verif)
	}

	var plan *fault.Plan
	if *faults == "standard" {
		plan = fault.StandardPlan(*size)
	} else if *faults != "" {
		raw, err := os.ReadFile(*faults)
		if err != nil {
			return fmt.Errorf("read fault plan: %w", err)
		}
		plan, err = fault.Parse(string(raw))
		if err != nil {
			return err
		}
	}

	// execute builds a fresh world and runs the whole scenario once.
	// Replay verification calls it twice with journals and diffs them;
	// the quiet flag mutes the per-run narration on the second pass.
	execute := func(journal *checkpoint.Journal, quiet bool) error {
		var terr *geo.Terrain
		switch *terrain {
		case "open":
			terr = geo.NewOpenTerrain(*size, *size)
		case "urban":
			terr = geo.NewUrbanTerrain(*size, *size, 100)
		case "sparse":
			terr = geo.NewSparseTerrain(*size, *size)
		default:
			return fmt.Errorf("unknown terrain %q", *terrain)
		}

		cfg := core.WorldConfig{Seed: *seed, Terrain: terr, Assets: *assets}
		if *churn {
			cfg.Churn = &asset.ChurnConfig{FailRatePerMin: 0.02, ArriveRatePerMin: 3, ReviveProb: 0.5}
		}
		w := core.NewWorld(cfg)
		defer w.Stop()

		var m core.Mission
		if *spec != "" {
			raw, err := os.ReadFile(*spec)
			if err != nil {
				return fmt.Errorf("read spec: %w", err)
			}
			m, err = intent.Parse(string(raw))
			if err != nil {
				return err
			}
		} else {
			pad := *size / 5
			m = core.DefaultMission(geo.NewRect(
				geo.Point{X: pad, Y: pad}, geo.Point{X: *size - pad, Y: *size - pad}))
			m.Goal.CoverageFrac = 0.5
			m.IncidentsPerMin = *rate
			m.HierarchyLevels = *levels
			switch *command {
			case "intent":
				m.Command = core.CommandIntent
			case "hierarchy":
				m.Command = core.CommandHierarchy
			default:
				return fmt.Errorf("unknown command model %q", *command)
			}
		}

		m.Degradation = m.Degradation || *degrade
		m.ReliableOrders = m.ReliableOrders || *reliab
		m.CheckpointEvery = *ckEvery

		r := core.NewRuntime(w, m)
		r.SetJournal(journal)
		if err := r.Synthesize(); err != nil {
			return fmt.Errorf("synthesis: %w", err)
		}
		comp := r.Composite()
		if !quiet {
			fmt.Printf("world: %d assets on %s terrain (%gm)\n", w.Pop.Len(), *terrain, *size)
			fmt.Printf("composite: %d members, coverage %.2f, connected %v, mean trust %.2f\n",
				len(comp.Members), comp.Assurance.CoverageFrac, comp.Assurance.Connected,
				comp.Assurance.MeanTrust)
			if *ckEvery > 0 {
				fmt.Printf("checkpoints: every %s\n", *ckEvery)
			}
		}

		if err := r.Start(); err != nil {
			return err
		}
		// The invariant registry is always armed: under a fault plan the
		// harness drives its cadence; otherwise (with -verify) a 1s sweep
		// ticker does. -verify turns any violation into a nonzero exit.
		reg := verify.NewRegistry()
		reg.Add(verify.MissionInvariants(w, r)...)
		if testExtraInvariants != nil {
			//iobt:allow metricreg test-only hook, nil outside the test binary; the mission set above registers unconditionally
			reg.Add(testExtraInvariants()...)
		}
		reg.SetClock(w.Eng.Now)
		// The gossip overlay enrolls every composite member with a CRDT
		// picture replica: the command post periodically folds its world
		// view into its own replica and gossips the encoded state, every
		// member merges what arrives, and the overlay conservation plus
		// picture-monotonicity invariants ride the same registry as the
		// mission set.
		var g *mesh.Gossip
		var gPics map[mesh.NodeID]*cop.Picture
		if *gossip {
			members := append([]asset.ID(nil), comp.Members...)
			if post := r.Sink(); post != asset.None {
				found := false
				for _, id := range members {
					if id == post {
						found = true
						break
					}
				}
				if !found {
					members = append(members, post)
				}
			}
			sort.Slice(members, func(i, j int) bool { return members[i] < members[j] })
			g = mesh.NewGossip(w.Net, mesh.GossipConfig{})
			gPics = make(map[mesh.NodeID]*cop.Picture, len(members))
			for _, id := range members {
				node := id
				gPics[id] = cop.NewPicture(id)
				prev := w.Net.Handler(id)
				g.Join(id, func(msg mesh.Message) {
					if msg.Kind == "cop" {
						if enc, ok := msg.Payload.([]byte); ok {
							if remote, err := cop.Decode(enc); err == nil {
								gPics[node].Merge(remote)
							}
						}
						return
					}
					if prev != nil {
						prev(msg)
					}
				})
			}
			g.Start()
			post := r.Sink()
			w.Eng.Every(10*time.Second, "iobtsim.cop", func() {
				p := gPics[post]
				if p == nil {
					return
				}
				core.UpdatePicture(p, w, r, core.DefaultCOPCell)
				enc := p.Encode()
				if _, err := g.Publish(post, "cop", float64(len(enc)), enc); err != nil {
					return
				}
			})
			//iobt:allow metricreg the overlay invariants exist only under -gossip; without the flag there is no Gossip instance or picture set to check
			reg.Add(verify.GossipConservation(g))
			//iobt:allow metricreg same -gossip gate as the conservation check above
			reg.Add(verify.PictureMonotone("iobtsim", func() []*cop.Picture {
				out := make([]*cop.Picture, 0, len(members))
				for _, id := range members {
					out = append(out, gPics[id])
				}
				return out
			}))
			if !quiet {
				fmt.Printf("gossip overlay: %d members, anti-entropy every %s\n",
					len(members), g.Config().AntiEntropyEvery)
			}
		}
		if *jam {
			w.Jam.Add(attack.Jammer{
				Area:      geo.Circle{Center: terr.Bounds.Center(), Radius: *size / 3},
				Intensity: 0.9,
				From:      2 * time.Minute,
			})
			if !quiet {
				fmt.Println("jammer armed: center of map at t=2min")
			}
		}
		horizon := time.Duration(*minutes) * time.Minute
		var rep *fault.Report
		if plan != nil {
			if !quiet {
				fmt.Printf("fault plan %q armed: %d faults\n", plan.Name, len(plan.Faults))
			}
			h := &fault.Harness{
				T: fault.Target{
					Eng: w.Eng, Pop: w.Pop, Net: w.Net, Jam: w.Jam, Smoke: w.Smoke,
					Composite:   func() []asset.ID { return r.Composite().Members },
					CommandPost: func() asset.ID { return r.Sink() },
					CrashPost:   r.CrashPost,
					Failover:    r.Failover,
				},
				Plan: plan,
				Goodput: func() (uint64, uint64) {
					return r.Metrics.OnTime.Value(), r.Metrics.Incidents.Value()
				},
				Invariants: reg.FaultInvariants(),
				Recovery:   fault.RecoveryHooks(r.Probe()),
			}
			var err error
			if rep, err = h.Run(horizon); err != nil {
				return err
			}
			// Final sweep at the horizon: the harness checks invariants on
			// its periodic tick, so a violation introduced by the events
			// after the last tick would otherwise escape -verify entirely.
			reg.CheckNow(w.Eng.Now())
		} else {
			if *verif {
				reg.Arm(w.Eng, time.Second)
			}
			if err := w.Run(horizon); err != nil {
				return err
			}
			reg.CheckNow(w.Eng.Now())
			reg.Disarm()
		}
		r.Stop()
		summary := reg.Summarize()
		if quiet {
			if *verif && !reg.OK() {
				return fmt.Errorf("%w: %s", errVerification, summary)
			}
			return nil
		}

		met := &r.Metrics
		fmt.Printf("\nmission results (%d simulated minutes, %s command):\n", *minutes, m.Command)
		fmt.Printf("  incidents:        %d\n", met.Incidents.Value())
		fmt.Printf("  detected:         %d (%.0f%%)\n", met.Detected.Value(), 100*met.DetectionRate())
		fmt.Printf("  acted:            %d\n", met.Acted.Value())
		fmt.Printf("  on time:          %d (success %.0f%%)\n", met.OnTime.Value(), 100*met.SuccessRate())
		fmt.Printf("  decision latency: %s\n", met.DecisionLatency.Summarize())
		fmt.Printf("  reflex repairs:   %d\n", met.Repairs.Value())
		fmt.Printf("  undeliverable:    %d\n", met.Undeliverable.Value())
		if m.Degradation {
			fmt.Printf("  degradation: fallbacks=%d restores=%d relaxations=%d\n",
				met.Fallbacks.Value(), met.Restores.Value(), met.Relaxations.Value())
		}
		if c := r.Checkpoints(); c != nil {
			fmt.Printf("  checkpoints: taken=%d skipped=%d restores=%d bytes=%d failovers=%d\n",
				c.Taken.Value(), c.Skipped.Value(), c.Restores.Value(), c.BytesTotal.Value(),
				met.Failovers.Value())
		}
		fmt.Printf("  health: %s (%d transitions)\n", r.Health(), met.HealthChanges.Value())
		fmt.Printf("  network: delivered=%d dropped=%d noroute=%d\n",
			w.Net.Delivered.Value(), w.Net.Dropped.Value(), w.Net.NoRoute.Value())
		if g != nil {
			fmt.Printf("  gossip: published=%d delivery=%.2f repairs=%d frames=%d\n",
				g.Published.Value(), g.DeliveryRatio(), g.Repairs.Value(), g.FramesSent.Value())
			if p := gPics[r.Sink()]; p != nil {
				tracks, trustPairs, cells, _ := p.Counts()
				fmt.Printf("  post picture: tracks=%d trust=%d cells=%d digest=%016x\n",
					tracks, trustPairs, cells, p.Digest())
			}
		}
		fmt.Printf("  fingerprint: %016x\n", met.Fingerprint())
		if rep != nil {
			fmt.Printf("\n%s", rep)
		}
		fmt.Printf("  %s\n", summary)
		if *verif && !reg.OK() {
			return fmt.Errorf("%w: %s", errVerification, summary)
		}
		return nil
	}

	if *replay {
		planStr := ""
		if plan != nil {
			planStr = plan.String()
		}
		var runErr error
		first := true
		div := checkpoint.VerifyReplay(*seed, planStr, func(j *checkpoint.Journal) {
			if runErr != nil {
				return
			}
			runErr = execute(j, !first)
			first = false
		})
		if runErr != nil {
			return runErr
		}
		if div != nil {
			return fmt.Errorf("%w: replay diverged: %s", errVerification, div.Error())
		}
		fmt.Println("\nreplay verification OK: two runs produced byte-identical decision journals")
		return nil
	}
	return execute(nil, false)
}
