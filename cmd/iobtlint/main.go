// Command iobtlint runs the repo's custom determinism and snapshot
// analyzers (internal/lint) over the given packages:
//
//	go run ./cmd/iobtlint ./...
//	go run ./cmd/iobtlint -list
//	go run ./cmd/iobtlint -only detrand,maporder ./...
//	go run ./cmd/iobtlint -pkg 'iobt/internal/mesh' ./...
//	go run ./cmd/iobtlint -pkg 'iobt/internal/...' ./...
//	go run ./cmd/iobtlint -json ./... > findings.json
//	go run ./cmd/iobtlint -graph callgraph.dot ./...
//
// -pkg restricts which packages are *reported* on, not which are
// loaded: the interprocedural analyzers always build the whole-program
// call graph and taint summaries, so a flow from an unfiltered package
// into a filtered one is still caught. The glob matches import paths
// segment-wise ("*" within a segment, a trailing "/..." for a subtree).
//
// -graph writes the whole-program call graph as deterministic DOT to
// the named file ("-" for stdout) and exits without linting.
//
// Exit status: 0 when the tree is clean (suppressed findings with a
// reasoned //iobt:allow comment do not count), 1 when there are active
// findings, 2 on usage or load errors. -show-allowed prints the
// suppressed findings too, as an audit trail. JSON output is ordered by
// file, line, column, then analyzer, so runs diff cleanly.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"sort"
	"strings"

	"iobt/internal/lint"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

func run(args []string, stdout, stderr *os.File) int {
	fs := flag.NewFlagSet("iobtlint", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		list        = fs.Bool("list", false, "list analyzers and exit")
		only        = fs.String("only", "", "comma-separated analyzer names to run (default: all)")
		pkgGlob     = fs.String("pkg", "", "report findings only for packages matching this import-path glob")
		graphOut    = fs.String("graph", "", "write the call graph as DOT to this file (\"-\" for stdout) and exit")
		jsonOut     = fs.Bool("json", false, "emit findings as JSON")
		showAllowed = fs.Bool("show-allowed", false, "also print findings waived by //iobt:allow")
	)
	if err := fs.Parse(args); err != nil {
		return 2
	}
	if *list {
		as := lint.Analyzers()
		sort.Slice(as, func(i, j int) bool { return as[i].Name < as[j].Name })
		for _, a := range as {
			fmt.Fprintf(stdout, "%-14s %s\n", a.Name, a.Doc)
		}
		return 0
	}
	analyzers := lint.Analyzers()
	if *only != "" {
		byName := map[string]*lint.Analyzer{}
		for _, a := range analyzers {
			byName[a.Name] = a
		}
		analyzers = nil
		for _, name := range strings.Split(*only, ",") {
			a, ok := byName[strings.TrimSpace(name)]
			if !ok {
				known := make([]string, 0, len(byName))
				for n := range byName {
					known = append(known, n)
				}
				sort.Strings(known)
				fmt.Fprintf(stderr, "iobtlint: unknown analyzer %q; known analyzers: %s\n", name, strings.Join(known, ", "))
				return 2
			}
			analyzers = append(analyzers, a)
		}
	}
	patterns := fs.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	prog, err := lint.LoadProgram("", patterns...)
	if err != nil {
		fmt.Fprintf(stderr, "iobtlint: %v\n", err)
		return 2
	}
	if *graphOut != "" {
		out := stdout
		if *graphOut != "-" {
			f, err := os.Create(*graphOut)
			if err != nil {
				fmt.Fprintf(stderr, "iobtlint: %v\n", err)
				return 2
			}
			defer f.Close()
			out = f
		}
		if err := prog.Graph.WriteDOT(out); err != nil {
			fmt.Fprintf(stderr, "iobtlint: %v\n", err)
			return 2
		}
		return 0
	}
	diags := prog.AnalyzeMatching(analyzers, *pkgGlob)
	active := lint.Active(diags)
	shown := active
	if *showAllowed {
		shown = diags
	}
	if *jsonOut {
		enc := json.NewEncoder(stdout)
		enc.SetIndent("", "  ")
		out := struct {
			Coverage lint.Coverage     `json:"coverage"`
			Findings []lint.Diagnostic `json:"findings"`
		}{lint.Summarize(diags), shown}
		if err := enc.Encode(out); err != nil {
			fmt.Fprintf(stderr, "iobtlint: %v\n", err)
			return 2
		}
	} else {
		for _, d := range shown {
			fmt.Fprintln(stdout, d)
		}
		cov := lint.Summarize(diags)
		fmt.Fprintf(stdout, "iobtlint: %d analyzers, %d findings, %d allowed\n",
			cov.Analyzers, cov.Findings, cov.Allowed)
	}
	if len(active) > 0 {
		return 1
	}
	return 0
}
