package main

import (
	"io"
	"os"
	"path/filepath"
	"regexp"
	"sort"
	"strings"
	"testing"

	"iobt/internal/lint"
)

// listedAnalyzers runs the real -list path and parses the analyzer
// names it prints.
func listedAnalyzers(t *testing.T) []string {
	t.Helper()
	f, err := os.CreateTemp(t.TempDir(), "iobtlint-list")
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	if code := run([]string{"-list"}, f, f); code != 0 {
		t.Fatalf("-list exited %d", code)
	}
	if _, err := f.Seek(0, io.SeekStart); err != nil {
		t.Fatal(err)
	}
	out, err := io.ReadAll(f)
	if err != nil {
		t.Fatal(err)
	}
	var names []string
	for _, line := range strings.Split(strings.TrimSpace(string(out)), "\n") {
		fields := strings.Fields(line)
		if len(fields) == 0 {
			t.Fatalf("blank -list line in output:\n%s", out)
		}
		names = append(names, fields[0])
	}
	return names
}

// documentedAnalyzers parses the DESIGN.md §9 analyzer table: every
// row's first cell is the backticked analyzer name.
func documentedAnalyzers(t *testing.T) []string {
	t.Helper()
	raw, err := os.ReadFile(filepath.Join("..", "..", "DESIGN.md"))
	if err != nil {
		t.Fatal(err)
	}
	text := string(raw)
	start := strings.Index(text, "\n## 9.")
	end := strings.Index(text, "\n## 10.")
	if start < 0 || end < 0 || end < start {
		t.Fatalf("DESIGN.md section 9 boundaries not found (start=%d end=%d)", start, end)
	}
	rows := regexp.MustCompile("(?m)^\\| `([a-z]+)` \\|").FindAllStringSubmatch(text[start:end], -1)
	var names []string
	for _, m := range rows {
		names = append(names, m[1])
	}
	return names
}

// TestListMatchesDocumentedSet is the registry drift guard: the
// analyzer set the binary actually runs (-list) and the set DESIGN.md
// §9 documents must be identical. Adding an analyzer without
// documenting its contract — or documenting one that was never
// registered — fails here.
func TestListMatchesDocumentedSet(t *testing.T) {
	listed := listedAnalyzers(t)
	documented := documentedAnalyzers(t)
	if len(listed) == 0 || len(documented) == 0 {
		t.Fatalf("degenerate sets: listed=%v documented=%v", listed, documented)
	}
	ls := append([]string(nil), listed...)
	ds := append([]string(nil), documented...)
	sort.Strings(ls)
	sort.Strings(ds)
	if strings.Join(ls, ",") != strings.Join(ds, ",") {
		t.Errorf("analyzer registry drifted from DESIGN.md §9:\n  -list:    %v\n  DESIGN.md: %v", ls, ds)
	}
}

// TestListIsSorted pins the -list presentation order so the output is
// diffable and the documented quickstart stays accurate.
func TestListIsSorted(t *testing.T) {
	names := listedAnalyzers(t)
	if !sort.StringsAreSorted(names) {
		t.Errorf("-list output not sorted: %v", names)
	}
}

func TestUnknownAnalyzerRejected(t *testing.T) {
	f, err := os.CreateTemp(t.TempDir(), "iobtlint-err")
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	if code := run([]string{"-only", "nosuchanalyzer"}, f, f); code != 2 {
		t.Errorf("-only with unknown analyzer exited %d, want 2", code)
	}
	raw, err := os.ReadFile(f.Name())
	if err != nil {
		t.Fatal(err)
	}
	out := string(raw)
	if !strings.Contains(out, `unknown analyzer "nosuchanalyzer"`) {
		t.Errorf("error output %q does not name the rejected analyzer", out)
	}
	// The error must teach the fix: every known analyzer, sorted, inline.
	for _, a := range lint.Analyzers() {
		if !strings.Contains(out, a.Name) {
			t.Errorf("error output does not list known analyzer %q:\n%s", a.Name, out)
		}
	}
}
