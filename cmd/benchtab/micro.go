package main

// The -bench mode: pinned hot-path micro-benchmarks run in-process
// through testing.Benchmark, rendered as a table with events_per_sec
// and allocs_per_op columns, and compared against a committed baseline
// (BENCH_MICRO.json) by the CI bench gate. The loops mirror the
// package benchmarks in internal/sim and internal/track — same bodies,
// same steady states — so `go test -bench` and `benchtab -bench` read
// the same costs.
//
// The gate's contract is asymmetric on purpose: ns/op may drift with
// the host (the -maxregress fraction absorbs that), but allocs/op on a
// zero-alloc path is a property of the code, not the machine — ANY
// increase fails, with no tolerance.

import (
	"encoding/json"
	"fmt"
	"math"
	"os"
	"strings"
	"testing"
	"time"

	"iobt/internal/experiments"
	"iobt/internal/geo"
	"iobt/internal/sim"
	"iobt/internal/track"
)

// microBenchActors mirrors benchActors in internal/sim/bench_test.go.
const microBenchActors = 64

// A microBench is one pinned benchmark: a name stable enough to key a
// committed baseline, and a body whose steady state the hotpath
// analyzers hold at zero allocations.
type microBench struct {
	name string
	doc  string
	fn   func(b *testing.B)
}

// microBenches returns the pinned set, in render order. Every entry's
// allocs/op is 0 at head; the bench gate keeps it there.
func microBenches() []microBench {
	return []microBench{
		{
			name: "engine_event",
			doc:  "sequential engine: one steady-state Schedule+Step cycle",
			fn: func(b *testing.B) {
				eng := sim.NewEngine(1)
				var tick func()
				tick = func() { eng.Schedule(time.Millisecond, "tick", tick) }
				eng.Schedule(time.Millisecond, "tick", tick)
				b.ReportAllocs()
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					eng.Step()
				}
			},
		},
		{
			name: "sharded_local_1",
			doc:  "sharded engine, 1 shard: per-event cost of the local schedule path",
			fn:   func(b *testing.B) { microShardedTick(b, 1) },
		},
		{
			name: "sharded_local_4",
			doc:  "sharded engine, 4 shards: local path with barrier overhead amortized",
			fn:   func(b *testing.B) { microShardedTick(b, 4) },
		},
		{
			name: "sharded_send_4",
			doc:  "sharded engine, 4 shards: full cross-shard Send+mailbox+barrier path",
			fn:   func(b *testing.B) { microShardedSend(b, 4) },
		},
		{
			name: "tracker_observe",
			doc:  "per-tick greedy GNN association at a steady 50-track population",
			fn:   microTrackerObserve,
		},
	}
}

func microShardedTick(b *testing.B, shards int) {
	s := sim.NewSharded(1, sim.ShardedConfig{Shards: shards, Lookahead: time.Millisecond})
	var tick func(c *sim.ShardCtx)
	tick = func(c *sim.ShardCtx) { c.Schedule(time.Millisecond, "tick", tick) }
	for i := 0; i < microBenchActors; i++ {
		s.AddActor(sim.ActorID(i), i%shards)
		s.ScheduleActor(sim.ActorID(i), time.Millisecond, "tick", tick)
	}
	horizon := time.Duration((b.N+microBenchActors-1)/microBenchActors) * time.Millisecond
	b.ReportAllocs()
	b.ResetTimer()
	if err := s.Run(horizon); err != nil {
		b.Fatal(err)
	}
}

func microShardedSend(b *testing.B, shards int) {
	s := sim.NewSharded(1, sim.ShardedConfig{Shards: shards, Lookahead: time.Millisecond})
	var relay func(c *sim.ShardCtx)
	relay = func(c *sim.ShardCtx) {
		//iobt:allow lookaheadclamp the engine above is configured with Lookahead: time.Millisecond, so a 1ms Send is exactly at the floor, not clamped
		c.Send((c.Self()+1)%microBenchActors, time.Millisecond, "msg", relay)
	}
	for i := 0; i < microBenchActors; i++ {
		s.AddActor(sim.ActorID(i), i%shards)
	}
	for i := 0; i < microBenchActors; i++ {
		s.ScheduleActor(sim.ActorID(i), time.Millisecond, "seed", relay)
	}
	horizon := time.Duration((b.N+microBenchActors-1)/microBenchActors) * time.Millisecond
	b.ReportAllocs()
	b.ResetTimer()
	if err := s.Run(horizon); err != nil {
		b.Fatal(err)
	}
}

func microTrackerObserve(b *testing.B) {
	const targets = 50
	tr := track.NewTracker(track.Config{})
	dets := make([]track.Detection, targets)
	pos := func(i int, t float64) (x, y float64) {
		return float64(i%10)*200 + 10*math.Sin(t+float64(i)),
			float64(i/10)*200 + 10*math.Cos(t+float64(i))
	}
	now := time.Duration(0)
	fill := func() {
		for i := range dets {
			x, y := pos(i, now.Seconds())
			dets[i] = track.Detection{Pos: geo.Point{X: x, Y: y}, Var: 25, Sensor: int32(i % 4)}
		}
	}
	// Warm to the steady population so spawn-path allocations (waived
	// per-new-target, not per-tick) stay out of the timed loop.
	for tick := 0; tick < 5; tick++ {
		now += time.Second
		fill()
		tr.Observe(now, dets)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		now += time.Second
		fill()
		tr.Observe(now, dets)
	}
}

// A MicroResult is one benchmark's measured steady state. events_per_sec
// is the reciprocal throughput reading of ns_per_op — the number the
// paper-facing tables quote — and allocs_per_op is the number the gate
// refuses to let grow.
type MicroResult struct {
	Name         string  `json:"name"`
	NsPerOp      float64 `json:"ns_per_op"`
	EventsPerSec float64 `json:"events_per_sec"`
	AllocsPerOp  int64   `json:"allocs_per_op"`
	BytesPerOp   int64   `json:"bytes_per_op"`
}

// A MicroTable is the -bench output: results in pinned order plus the
// host envelope the numbers were measured under.
type MicroTable struct {
	Benchmarks []MicroResult     `json:"benchmarks"`
	Host       *experiments.Host `json:"host,omitempty"`
}

// runMicroBenches executes every pinned benchmark through
// testing.Benchmark (each self-tunes to roughly one second of work).
func runMicroBenches(host *experiments.Host) *MicroTable {
	t := &MicroTable{Host: host}
	for _, mb := range microBenches() {
		r := testing.Benchmark(mb.fn)
		ns := float64(r.NsPerOp())
		if r.N > 0 && r.T > 0 {
			ns = float64(r.T.Nanoseconds()) / float64(r.N)
		}
		eps := 0.0
		if ns > 0 {
			eps = 1e9 / ns
		}
		t.Benchmarks = append(t.Benchmarks, MicroResult{
			Name:         mb.name,
			NsPerOp:      ns,
			EventsPerSec: eps,
			AllocsPerOp:  r.AllocsPerOp(),
			BytesPerOp:   r.AllocedBytesPerOp(),
		})
	}
	return t
}

// String renders the text table.
func (t *MicroTable) String() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "%-18s %12s %16s %12s %12s\n",
		"benchmark", "ns/op", "events_per_sec", "allocs/op", "bytes/op")
	for _, r := range t.Benchmarks {
		fmt.Fprintf(&sb, "%-18s %12.1f %16.0f %12d %12d\n",
			r.Name, r.NsPerOp, r.EventsPerSec, r.AllocsPerOp, r.BytesPerOp)
	}
	return strings.TrimRight(sb.String(), "\n")
}

// JSON renders the machine-readable form committed as BENCH_MICRO.json.
func (t *MicroTable) JSON() string {
	raw, err := json.MarshalIndent(t, "", "  ")
	if err != nil {
		return fmt.Sprintf(`{"error": %q}`, err)
	}
	return string(raw)
}

// loadMicroBaseline reads a committed MicroTable.
func loadMicroBaseline(path string) (*MicroTable, error) {
	raw, err := os.ReadFile(path)
	if err != nil {
		return nil, fmt.Errorf("baseline: %w", err)
	}
	var t MicroTable
	if err := json.Unmarshal(raw, &t); err != nil {
		return nil, fmt.Errorf("baseline %s: %w", path, err)
	}
	return &t, nil
}

// compareMicro gates cur against base: every baseline benchmark must
// be present, may not exceed its baseline ns/op by more than
// maxRegress (a fraction, e.g. 0.15), and may not allocate more per op
// at all. All violations are reported together so one CI run shows the
// whole regression, not its first line.
func compareMicro(cur, base *MicroTable, maxRegress float64) error {
	curBy := map[string]MicroResult{}
	for _, r := range cur.Benchmarks {
		curBy[r.Name] = r
	}
	var violations []string
	for _, b := range base.Benchmarks {
		c, ok := curBy[b.Name]
		if !ok {
			violations = append(violations, fmt.Sprintf(
				"%s: in baseline but not produced by this run (renamed or dropped a pinned benchmark?)", b.Name))
			continue
		}
		if c.AllocsPerOp > b.AllocsPerOp {
			violations = append(violations, fmt.Sprintf(
				"%s: allocs/op %d > baseline %d — a zero-alloc path regressed; run iobtlint -only hotalloc,hotbox,defercycle and the sim alloc tests",
				b.Name, c.AllocsPerOp, b.AllocsPerOp))
		}
		if b.NsPerOp > 0 && c.NsPerOp > b.NsPerOp*(1+maxRegress) {
			violations = append(violations, fmt.Sprintf(
				"%s: ns/op %.1f > baseline %.1f by more than %.0f%%",
				b.Name, c.NsPerOp, b.NsPerOp, 100*maxRegress))
		}
	}
	if len(violations) > 0 {
		return fmt.Errorf("bench gate: %d regression(s) vs baseline:\n  %s",
			len(violations), strings.Join(violations, "\n  "))
	}
	return nil
}
