// Command benchtab regenerates the experiment tables of EXPERIMENTS.md:
// one table per paper claim (DESIGN.md §4, experiments E1..E15).
//
// Usage:
//
//	benchtab -experiment all          # every table (slow, full scale)
//	benchtab -experiment E2 -quick    # one table at reduced scale
//	benchtab -experiment E15 -format json > BENCH_E15.json
//	benchtab -list                    # enumerate experiments
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"iobt/internal/experiments"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "benchtab:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("benchtab", flag.ContinueOnError)
	var (
		experiment = fs.String("experiment", "all", "experiment id (E1..E15) or 'all'")
		seed       = fs.Int64("seed", 42, "deterministic seed")
		quick      = fs.Bool("quick", false, "reduced workload sizes")
		list       = fs.Bool("list", false, "list experiments and exit")
		format     = fs.String("format", "table", "output format: table|csv|json")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *list {
		for _, e := range experiments.All() {
			fmt.Printf("%-4s %s\n", e.ID, e.Name)
		}
		return nil
	}
	render := func(t *experiments.Table) string {
		switch *format {
		case "csv":
			return t.CSV()
		case "json":
			return t.JSON()
		default:
			return t.String()
		}
	}
	if strings.EqualFold(*experiment, "all") {
		for _, e := range experiments.All() {
			fmt.Println(render(e.Run(*seed, *quick)))
		}
		return nil
	}
	e, ok := experiments.Lookup(*experiment)
	if !ok {
		return fmt.Errorf("unknown experiment %q (use -list)", *experiment)
	}
	fmt.Println(render(e.Run(*seed, *quick)))
	return nil
}
