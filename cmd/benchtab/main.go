// Command benchtab regenerates the experiment tables of EXPERIMENTS.md:
// one table per paper claim (DESIGN.md §4, experiments E1..E17).
//
// Usage:
//
//	benchtab -experiment all          # every table (slow, full scale)
//	benchtab -experiment E2 -quick    # one table at reduced scale
//	benchtab -experiment E15 -format json > BENCH_E15.json
//	benchtab -list                    # enumerate experiments
//	benchtab -bench                   # pinned hot-path micro-benchmarks
//	benchtab -bench -format json > BENCH_MICRO.json   # refresh the baseline
//	benchtab -bench -compare BENCH_MICRO.json         # CI bench gate
package main

import (
	"flag"
	"fmt"
	"os"
	"runtime"
	"strings"

	"iobt/internal/experiments"
	"iobt/internal/lint"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "benchtab:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("benchtab", flag.ContinueOnError)
	var (
		experiment = fs.String("experiment", "all", "experiment id (E1..E17) or 'all'")
		seed       = fs.Int64("seed", 42, "deterministic seed")
		quick      = fs.Bool("quick", false, "reduced workload sizes")
		list       = fs.Bool("list", false, "list experiments and exit")
		format     = fs.String("format", "table", "output format: table|csv|json")
		bench      = fs.Bool("bench", false, "run the pinned hot-path micro-benchmarks instead of an experiment")
		compare    = fs.String("compare", "", "with -bench: compare against this baseline JSON and fail on regression")
		maxRegress = fs.Float64("maxregress", 0.15, "with -bench -compare: tolerated ns/op regression as a fraction (allocs/op tolerates nothing)")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *bench {
		host := &experiments.Host{GOMAXPROCS: runtime.GOMAXPROCS(0), CPUs: runtime.NumCPU()}
		t := runMicroBenches(host)
		if *format == "json" {
			fmt.Println(t.JSON())
		} else {
			fmt.Println(t.String())
		}
		if *compare != "" {
			base, err := loadMicroBaseline(*compare)
			if err != nil {
				return err
			}
			return compareMicro(t, base, *maxRegress)
		}
		return nil
	}
	if *list {
		for _, e := range experiments.All() {
			fmt.Printf("%-4s %s\n", e.ID, e.Name)
		}
		return nil
	}
	// JSON output embeds the iobtlint coverage of the tree that produced
	// the numbers, so committed BENCH_*.json records static checking
	// alongside invariant checking. Failure to lint (e.g. running the
	// binary outside the module) degrades to numbers-only output.
	var static *lint.Coverage
	if *format == "json" {
		if diags, err := lint.Run("", "./..."); err != nil {
			fmt.Fprintln(os.Stderr, "benchtab: static coverage unavailable:", err)
		} else {
			cov := lint.Summarize(diags)
			static = &cov
		}
	}
	// Host metadata makes scaling columns self-describing: BENCH_E18's
	// speedup figures only mean anything next to the parallelism the
	// host offered the run.
	host := &experiments.Host{GOMAXPROCS: runtime.GOMAXPROCS(0), CPUs: runtime.NumCPU()}
	render := func(t *experiments.Table) string {
		t.Static = static
		t.Host = host
		switch *format {
		case "csv":
			return t.CSV()
		case "json":
			return t.JSON()
		default:
			return t.String()
		}
	}
	if strings.EqualFold(*experiment, "all") {
		for _, e := range experiments.All() {
			fmt.Println(render(e.Run(*seed, *quick)))
		}
		return nil
	}
	e, ok := experiments.Lookup(*experiment)
	if !ok {
		return fmt.Errorf("unknown experiment %q (use -list)", *experiment)
	}
	fmt.Println(render(e.Run(*seed, *quick)))
	return nil
}
