package main

import (
	"path/filepath"
	"strings"
	"testing"
)

func TestRunList(t *testing.T) {
	if err := run([]string{"-list"}); err != nil {
		t.Fatalf("list: %v", err)
	}
}

func TestRunUnknownExperiment(t *testing.T) {
	err := run([]string{"-experiment", "E99"})
	if err == nil || !strings.Contains(err.Error(), "unknown experiment") {
		t.Fatalf("err = %v", err)
	}
}

func TestRunSingleQuick(t *testing.T) {
	if err := run([]string{"-experiment", "E9", "-quick"}); err != nil {
		t.Fatalf("E9 quick: %v", err)
	}
	if err := run([]string{"-experiment", "e9", "-quick", "-format", "csv"}); err != nil {
		t.Fatalf("csv: %v", err)
	}
}

func TestRunBadFlag(t *testing.T) {
	if err := run([]string{"-nonsense"}); err == nil {
		t.Fatal("bad flag accepted")
	}
}

// microResult builds a one-benchmark table for gate-logic tests.
func microTable(name string, ns float64, allocs int64) *MicroTable {
	return &MicroTable{Benchmarks: []MicroResult{
		{Name: name, NsPerOp: ns, EventsPerSec: 1e9 / ns, AllocsPerOp: allocs},
	}}
}

func TestCompareCleanWithinTolerance(t *testing.T) {
	base := microTable("engine_event", 100, 0)
	for _, ns := range []float64{80, 100, 114.9} {
		if err := compareMicro(microTable("engine_event", ns, 0), base, 0.15); err != nil {
			t.Errorf("ns/op %v within 15%% of 100 flagged: %v", ns, err)
		}
	}
}

func TestCompareFiresOnNsRegression(t *testing.T) {
	base := microTable("engine_event", 100, 0)
	err := compareMicro(microTable("engine_event", 116, 0), base, 0.15)
	if err == nil || !strings.Contains(err.Error(), "ns/op") {
		t.Fatalf("16%% ns/op regression not flagged: %v", err)
	}
}

func TestCompareFiresOnAnyAllocIncrease(t *testing.T) {
	// allocs/op tolerates nothing: 0 → 1 fails even with ns/op improved.
	base := microTable("sharded_send_4", 100, 0)
	err := compareMicro(microTable("sharded_send_4", 50, 1), base, 0.15)
	if err == nil || !strings.Contains(err.Error(), "allocs/op 1 > baseline 0") {
		t.Fatalf("allocs/op increase not flagged: %v", err)
	}
}

func TestCompareFiresOnDroppedBenchmark(t *testing.T) {
	base := microTable("engine_event", 100, 0)
	err := compareMicro(&MicroTable{}, base, 0.15)
	if err == nil || !strings.Contains(err.Error(), "not produced") {
		t.Fatalf("dropped pinned benchmark not flagged: %v", err)
	}
}

// TestRegressedFixtureFires pins the committed red-path fixture: the
// CI bench gate must exit nonzero when the current run is slower than
// the baseline claims, and testdata/regressed.json claims the
// impossible (0.001 ns/op), so any real measurement regresses.
func TestRegressedFixtureFires(t *testing.T) {
	base, err := loadMicroBaseline(filepath.Join("testdata", "regressed.json"))
	if err != nil {
		t.Fatal(err)
	}
	cur := microTable("engine_event", 25, 0)
	cur.Benchmarks = append(cur.Benchmarks, MicroResult{Name: "tracker_observe", NsPerOp: 20000})
	err = compareMicro(cur, base, 0.15)
	if err == nil || !strings.Contains(err.Error(), "2 regression(s)") {
		t.Fatalf("regressed fixture did not fire on both benchmarks: %v", err)
	}
}

// TestBaselineMatchesPinnedSet keeps BENCH_MICRO.json honest: the
// committed baseline must name exactly the benchmarks -bench runs, so
// the gate can never silently skip a renamed or new pinned loop.
func TestBaselineMatchesPinnedSet(t *testing.T) {
	base, err := loadMicroBaseline(filepath.Join("..", "..", "BENCH_MICRO.json"))
	if err != nil {
		t.Fatal(err)
	}
	want := map[string]bool{}
	for _, mb := range microBenches() {
		want[mb.name] = true
	}
	got := map[string]bool{}
	for _, r := range base.Benchmarks {
		got[r.Name] = true
		if !want[r.Name] {
			t.Errorf("baseline has %q but -bench does not run it", r.Name)
		}
		if r.AllocsPerOp != 0 {
			t.Errorf("baseline %s allocs/op = %d; the pinned set is the zero-alloc contract", r.Name, r.AllocsPerOp)
		}
	}
	for name := range want {
		if !got[name] {
			t.Errorf("-bench runs %q but the baseline does not pin it; refresh BENCH_MICRO.json", name)
		}
	}
}
