package main

import (
	"strings"
	"testing"
)

func TestRunList(t *testing.T) {
	if err := run([]string{"-list"}); err != nil {
		t.Fatalf("list: %v", err)
	}
}

func TestRunUnknownExperiment(t *testing.T) {
	err := run([]string{"-experiment", "E99"})
	if err == nil || !strings.Contains(err.Error(), "unknown experiment") {
		t.Fatalf("err = %v", err)
	}
}

func TestRunSingleQuick(t *testing.T) {
	if err := run([]string{"-experiment", "E9", "-quick"}); err != nil {
		t.Fatalf("E9 quick: %v", err)
	}
	if err := run([]string{"-experiment", "e9", "-quick", "-format", "csv"}); err != nil {
		t.Fatalf("csv: %v", err)
	}
}

func TestRunBadFlag(t *testing.T) {
	if err := run([]string{"-nonsense"}); err == nil {
		t.Fatal("bad flag accepted")
	}
}
