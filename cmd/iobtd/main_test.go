package main

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"regexp"
	"strings"
	"sync"
	"testing"
	"time"

	"iobt/internal/service"
	"iobt/internal/verify"
)

// syncWriter is a goroutine-safe output sink for run().
type syncWriter struct {
	mu  sync.Mutex
	buf bytes.Buffer
}

func (w *syncWriter) Write(p []byte) (int, error) {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.buf.Write(p)
}

func (w *syncWriter) String() string {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.buf.String()
}

var listenLine = regexp.MustCompile(`listening on (\S+)`)

// startServer boots run() on an ephemeral port and returns the base URL,
// a stop function, and the channel carrying run's final error.
func startServer(t *testing.T, extraArgs ...string) (string, context.CancelFunc, chan error, *syncWriter) {
	t.Helper()
	ctx, cancel := context.WithCancel(context.Background())
	out := &syncWriter{}
	done := make(chan error, 1)
	args := append([]string{"-addr", "127.0.0.1:0"}, extraArgs...)
	go func() { done <- run(ctx, args, out) }()

	deadline := time.Now().Add(10 * time.Second)
	for {
		if m := listenLine.FindStringSubmatch(out.String()); m != nil {
			return "http://" + m[1], cancel, done, out
		}
		select {
		case err := <-done:
			cancel()
			t.Fatalf("server exited before listening: %v\n%s", err, out.String())
		default:
		}
		if time.Now().After(deadline) {
			cancel()
			t.Fatalf("server never reported its address:\n%s", out.String())
		}
		time.Sleep(5 * time.Millisecond)
	}
}

func soakScenario(seed int64) string {
	sc := verify.Scenario{
		Seed:    seed,
		Assets:  90,
		Size:    600,
		Terrain: "open",
		Command: "intent",
		Rate:    10,
		Horizon: 20 * time.Second,
	}
	if seed%2 == 1 {
		sc.Command = "hierarchy"
		sc.Reliable = seed%4 == 1
	}
	return sc.String()
}

// submit POSTs a scenario, retrying on 429 backpressure like a real
// client, and returns the accepted mission view.
func submit(t *testing.T, base, scn string) service.MissionView {
	t.Helper()
	deadline := time.Now().Add(time.Minute)
	for {
		resp, err := http.Post(base+"/missions", "text/plain", strings.NewReader(scn))
		if err != nil {
			t.Fatalf("POST /missions: %v", err)
		}
		if resp.StatusCode == http.StatusAccepted {
			var v service.MissionView
			err := json.NewDecoder(resp.Body).Decode(&v)
			resp.Body.Close()
			if err != nil {
				t.Fatalf("decode submit: %v", err)
			}
			return v
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusTooManyRequests {
			t.Fatalf("submit status %d", resp.StatusCode)
		}
		if time.Now().After(deadline) {
			t.Fatal("429 backpressure never cleared")
		}
		time.Sleep(2 * time.Millisecond)
	}
}

func getJSON(t *testing.T, url string, v any) int {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatalf("GET %s: %v", url, err)
	}
	defer resp.Body.Close()
	if resp.StatusCode == http.StatusOK {
		if err := json.NewDecoder(resp.Body).Decode(v); err != nil {
			t.Fatalf("decode %s: %v", url, err)
		}
	}
	return resp.StatusCode
}

func TestRunBadFlags(t *testing.T) {
	if err := run(context.Background(), []string{"-nope"}, &syncWriter{}); err == nil {
		t.Error("unknown flag accepted")
	}
	if err := run(context.Background(), []string{"-addr", "256.0.0.1:99999"}, &syncWriter{}); err == nil ||
		!strings.Contains(err.Error(), "listen") {
		t.Errorf("bad addr error = %v, want listen failure", err)
	}
}

// TestServerLifecycle boots iobtd, runs one mission over HTTP end to
// end, and shuts down cleanly: submit → 202, poll to completed,
// telemetry counts it, SIGTERM-equivalent cancel drains and exits nil.
func TestServerLifecycle(t *testing.T) {
	base, cancel, done, out := startServer(t, "-workers", "2")
	defer cancel()

	v := submit(t, base, soakScenario(4001))
	deadline := time.Now().Add(2 * time.Minute)
	for {
		var got service.MissionView
		if code := getJSON(t, base+"/missions/"+v.ID, &got); code != http.StatusOK {
			t.Fatalf("GET mission: status %d", code)
		}
		if got.State == "completed" {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("mission never completed: %+v", got)
		}
		time.Sleep(10 * time.Millisecond)
	}

	var tel service.Telemetry
	if code := getJSON(t, base+"/telemetry", &tel); code != http.StatusOK || tel.Completed != 1 {
		t.Fatalf("telemetry status %d completed %d, want 200/1", code, tel.Completed)
	}

	cancel()
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("run exited with error: %v\n%s", err, out.String())
		}
	case <-time.After(time.Minute):
		t.Fatal("server did not shut down")
	}
	if !strings.Contains(out.String(), "drained: completed=1") {
		t.Errorf("shutdown report missing drain line:\n%s", out.String())
	}
}

// TestSoak is the CI soak job: boot iobtd with the chaos injector
// crashing workers mid-mission, flood it with concurrent submissions
// through a deliberately small admission queue, and require every
// mission to reach a terminal state with zero invariant violations,
// every crash recovered exactly, and a clean drain.
func TestSoak(t *testing.T) {
	const (
		missions = 24
		clients  = 8
	)
	base, cancel, done, out := startServer(t,
		"-workers", "4",
		"-queue", "4",
		"-data", t.TempDir(),
		"-stall-after", "10s",
		"-chaos-prob", "0.6",
		"-checkpoint", "5s",
	)
	defer cancel()

	var wg sync.WaitGroup
	wg.Add(clients)
	for c := 0; c < clients; c++ {
		go func(c int) {
			defer wg.Done()
			for i := c; i < missions; i += clients {
				submit(t, base, soakScenario(int64(5000+i)))
			}
		}(c)
	}
	wg.Wait()

	// Poll until every mission is terminal.
	terminal := map[string]bool{"completed": true, "degraded": true, "failed": true, "quarantined": true}
	deadline := time.Now().Add(4 * time.Minute)
	var views []service.MissionView
	for {
		views = nil
		if code := getJSON(t, base+"/missions", &views); code != http.StatusOK {
			t.Fatalf("GET /missions: status %d", code)
		}
		doneCount := 0
		for _, v := range views {
			if terminal[v.State] {
				doneCount++
			}
		}
		if len(views) == missions && doneCount == missions {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("soak never settled: %d/%d missions, %d terminal", len(views), missions, doneCount)
		}
		time.Sleep(20 * time.Millisecond)
	}

	crashes := 0
	for _, v := range views {
		if v.State != "completed" {
			t.Errorf("%s: state %s (%s), want completed", v.ID, v.State, v.Reason)
		}
		if len(v.Violations) != 0 {
			t.Errorf("%s: invariant violations under soak: %v", v.ID, v.Violations)
		}
		crashes += v.Crashes
	}
	if crashes == 0 {
		t.Error("chaos injector never crashed a worker: the soak exercised nothing")
	}

	cancel()
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("soak shutdown error: %v\n%s", err, out.String())
		}
	case <-time.After(2 * time.Minute):
		t.Fatal("soak server did not shut down")
	}
	if !strings.Contains(out.String(), fmt.Sprintf("drained: completed=%d", missions)) {
		t.Errorf("drain line does not account for all missions:\n%s", out.String())
	}
}
