// Command iobtd is the mission service: a long-lived HTTP server that
// accepts versioned .scn scenarios, runs each mission in a supervised
// worker pool, and exposes status and telemetry endpoints.
//
// Where iobtsim runs one mission and exits, iobtd multiplexes many
// concurrent missions and keeps its promises under failure: panicking
// workers are contained, stalled missions are restarted from their
// latest checkpoint, restart storms are quarantined, the admission
// queue is bounded (429 on overflow), and shutdown drains every
// admitted mission before exiting.
//
// Usage:
//
//	iobtd -addr 127.0.0.1:8080 -workers 8 -data /var/lib/iobtd
//	curl -s --data-binary @mission.scn localhost:8080/missions
//	curl -s localhost:8080/missions/m-000001
//	curl -s localhost:8080/telemetry
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"io"
	"net"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"iobt/internal/service"
)

func main() {
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	if err := run(ctx, os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "iobtd:", err)
		os.Exit(1)
	}
}

// run boots the service and serves until ctx is cancelled or the
// listener fails, then shuts the HTTP front end and drains the mission
// pool. It binds the listener itself (so -addr :0 is testable) and
// reports the bound address on out.
func run(ctx context.Context, args []string, out io.Writer) error {
	fs := flag.NewFlagSet("iobtd", flag.ContinueOnError)
	var (
		addr      = fs.String("addr", "127.0.0.1:8080", "listen address (host:port; port 0 picks a free port)")
		workers   = fs.Int("workers", 4, "concurrent mission workers")
		queue     = fs.Int("queue", 64, "bounded admission queue depth (overflow is rejected with 429)")
		data      = fs.String("data", "", "directory for durable checkpoints and reproducer snapshots (empty: in-memory only)")
		restarts  = fs.Int("max-restarts", 3, "supervised restarts per mission before quarantine")
		stall     = fs.Duration("stall-after", 2*time.Second, "watchdog stall deadline: restart a mission with no event progress for this long (negative disables)")
		maxWall   = fs.Duration("max-wall", 0, "per-mission wall-clock budget (0: unlimited)")
		maxEvents = fs.Uint64("max-events", 0, "per-mission executed-event budget (0: unlimited)")
		maxCk     = fs.Int("max-checkpoint-bytes", 0, "per-mission encoded checkpoint size budget (0: unlimited)")
		ckEvery   = fs.Duration("checkpoint", 10*time.Second, "default checkpoint cadence for scenarios that set none")
		chaos     = fs.Float64("chaos-prob", 0, "probability a mission suffers an injected worker crash (soak/test)")
		chaosN    = fs.Int("chaos-attempts", 1, "with -chaos-prob, how many attempts of a chaotic mission crash")
		stallMode = fs.Bool("chaos-stall", false, "with -chaos-prob, wedge the worker instead of panicking it")
		drainFor  = fs.Duration("drain-timeout", 2*time.Minute, "graceful-drain budget on shutdown; in-flight missions are cancelled at the deadline")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}

	svc := service.New(service.Config{
		Workers:            *workers,
		QueueDepth:         *queue,
		DataDir:            *data,
		MaxRestarts:        *restarts,
		StallAfter:         *stall,
		MaxWall:            *maxWall,
		MaxEvents:          *maxEvents,
		MaxCheckpointBytes: *maxCk,
		CheckpointEvery:    *ckEvery,
		Chaos: service.ChaosConfig{
			CrashProb:     *chaos,
			CrashAttempts: *chaosN,
			Stall:         *stallMode,
		},
	})

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		_ = svc.Close()
		return fmt.Errorf("listen: %w", err)
	}
	srv := &http.Server{Handler: svc.Handler(), ReadHeaderTimeout: 10 * time.Second}
	errc := make(chan error, 1)
	go func() { errc <- srv.Serve(ln) }()
	fmt.Fprintf(out, "iobtd: listening on %s (workers=%d queue=%d)\n", ln.Addr(), *workers, *queue)

	select {
	case <-ctx.Done():
	case err := <-errc:
		if err != nil && !errors.Is(err, http.ErrServerClosed) {
			_ = svc.Close()
			return fmt.Errorf("serve: %w", err)
		}
	}

	// Graceful shutdown: drain the pool while the HTTP front end keeps
	// serving. Drain stops admission immediately (submissions get 503,
	// /healthz reports "draining" so load balancers rotate the instance
	// out, status and telemetry stay pollable), and every admitted
	// mission runs to a terminal state. Only then does the listener
	// close.
	drainCtx, drainCancel := context.WithTimeout(context.Background(), *drainFor)
	defer drainCancel()
	drainErr := svc.Drain(drainCtx)
	shCtx, shCancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer shCancel()
	if err := srv.Shutdown(shCtx); err != nil {
		fmt.Fprintf(out, "iobtd: http shutdown: %v\n", err)
	}

	tel := svc.Telemetry()
	fmt.Fprintf(out, "iobtd: drained: completed=%d degraded=%d failed=%d quarantined=%d restarts=%d\n",
		tel.Completed, tel.Degraded, tel.Failed, tel.Quarantined, tel.Restarts)
	if drainErr != nil {
		return fmt.Errorf("drain: %w", drainErr)
	}
	return nil
}
