// Surveillance: the paper's §II "wide area persistent surveillance"
// task at scale — discover assets (including red/gray devices via side
// channels), compose a 2,000-asset-pool composite, and keep it running
// under continuous churn with incremental re-composition.
//
//	go run ./examples/surveillance
package main

import (
	"fmt"
	"log"
	"time"

	"iobt/internal/asset"
	"iobt/internal/core"
	"iobt/internal/discovery"
	"iobt/internal/geo"
)

func main() {
	world := core.NewWorld(core.WorldConfig{
		Seed:    23,
		Terrain: geo.NewUrbanTerrain(3000, 3000, 100),
		Assets:  2000,
		Churn: &asset.ChurnConfig{
			FailRatePerMin:   0.01,
			ArriveRatePerMin: 10,
			ReviveProb:       0.5,
		},
	})
	defer world.Stop()

	// Phase 1 — recruitment: scanners sweep the sector; the directory
	// accumulates cooperative blue assets and flags silent emitters.
	var scanners []asset.ID
	for _, a := range world.Pop.All() {
		if a.Class == asset.ClassUAV && a.Affiliation == asset.Blue {
			scanners = append(scanners, a.ID)
			if len(scanners) == 8 {
				break
			}
		}
	}
	dcfg := discovery.DefaultConfig()
	dcfg.Scanners = scanners
	disc := discovery.New(world.Eng, world.Pop, world.Trust, dcfg)
	disc.Start()
	if err := world.Run(time.Minute); err != nil {
		log.Fatal(err)
	}
	st := disc.Evaluate()
	fmt.Printf("discovery after 1 min: recall=%.2f class-acc=%.2f red-recall=%.2f red-precision=%.2f\n",
		st.Recall, st.ClassAccuracy, st.RedRecall, st.RedPrecision)

	// Phase 2 — composition over the trust-filtered pool.
	mission := core.DefaultMission(
		geo.NewRect(geo.Point{X: 400, Y: 400}, geo.Point{X: 2600, Y: 2600}))
	mission.Goal.Name = "persistent surveillance"
	mission.Goal.CoverageFrac = 0.5
	mission.Goal.MinTrust = 0.3
	mission.IncidentsPerMin = 12 // tracked movers crossing the sector

	rt := core.NewRuntime(world, mission)
	if err := rt.Synthesize(); err != nil {
		log.Fatalf("synthesis: %v", err)
	}
	a := rt.Composite().Assurance
	fmt.Printf("composite: %d members, coverage %.0f%%, risk %.0f%%, est latency %v\n",
		len(rt.Composite().Members), 100*a.CoverageFrac, 100*a.RiskFrac, a.EstLatency)

	// Phase 3 — persistent operation under churn; the coverage reflex
	// recomposes around failures as a normal operating regime.
	if err := rt.Start(); err != nil {
		log.Fatal(err)
	}
	for epoch := 1; epoch <= 3; epoch++ {
		if err := world.Run(5 * time.Minute); err != nil {
			log.Fatal(err)
		}
		m := &rt.Metrics
		fmt.Printf("t=%2d min: tracked=%d success=%.0f%% repairs=%d (churn: %d failed, %d arrived)\n",
			epoch*5, m.Incidents.Value(), 100*m.SuccessRate(), m.Repairs.Value(),
			world.Churn.Failed(), world.Churn.Arrived())
	}
	rt.Stop()
	disc.Stop()

}
