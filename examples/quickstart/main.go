// Quickstart: build a battlefield world, synthesize a composite IoBT
// for a sensing mission, run it for five simulated minutes, and print
// the mission metrics.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"
	"time"

	"iobt/internal/core"
	"iobt/internal/geo"
)

func main() {
	// 1. A world: terrain, a heterogeneous asset population, and the
	//    wireless mesh connecting it (all driven by one deterministic
	//    discrete-event engine).
	world := core.NewWorld(core.WorldConfig{
		Seed:    7,
		Terrain: geo.NewOpenTerrain(1200, 1200),
		Assets:  300,
	})
	defer world.Stop()

	// 2. A mission: commander's intent over an area of operations.
	mission := core.DefaultMission(
		geo.NewRect(geo.Point{X: 200, Y: 200}, geo.Point{X: 1000, Y: 1000}))
	mission.Goal.CoverageFrac = 0.5
	mission.Command = core.CommandIntent

	// 3. Synthesis (Challenge 1): recruit and compose assets meeting the
	//    goal, with a quantified assurance report.
	rt := core.NewRuntime(world, mission)
	if err := rt.Synthesize(); err != nil {
		log.Fatalf("synthesis: %v", err)
	}
	a := rt.Composite().Assurance
	fmt.Printf("composite: %d members, coverage %.0f%%, connected=%v\n",
		len(rt.Composite().Members), 100*a.CoverageFrac, a.Connected)

	// 4. Execution (Challenge 2): incidents arrive; the composite
	//    detects and acts under intent-based autonomy, with a reflex
	//    monitor repairing the composite on losses.
	if err := rt.Start(); err != nil {
		log.Fatal(err)
	}
	if err := world.Run(5 * time.Minute); err != nil {
		log.Fatal(err)
	}
	rt.Stop()

	m := &rt.Metrics
	fmt.Printf("incidents=%d detected=%.0f%% success=%.0f%% median decision=%.2fs\n",
		m.Incidents.Value(), 100*m.DetectionRate(), 100*m.SuccessRate(),
		m.DecisionLatency.Percentile(50))
}
