// Tracking: the paper's §II flagship task — "tracking a dispersed group
// of humans and vehicles moving through cluttered environments" — with
// the §III secure-state-estimation twist: two of the six sensors have
// been captured and inject biased positions. Naive averaging of
// redundant detections is dragged off-target; coordinate-wise median
// fusion (resilient to any minority of corrupted sensors) keeps the
// track on the real target, and the outlier flagger identifies the
// compromised sensors for the trust ledger.
//
//	go run ./examples/tracking
package main

import (
	"fmt"
	"time"

	"iobt/internal/asset"
	"iobt/internal/geo"
	"iobt/internal/sim"
	"iobt/internal/track"
	"iobt/internal/trust"
)

func main() {
	rng := sim.NewRNG(17)

	// One vehicle crossing the sector, watched by six overlapping
	// sensors; sensors 0 and 1 are compromised and report a +150 m bias.
	target := geo.NewPatrol([]geo.Point{{X: 100, Y: 500}, {X: 900, Y: 500}}, 8)
	const nSensors = 6
	const bias = 150.0

	ledger := trust.NewLedger()
	meanTracker := track.NewTracker(track.Config{ProcessNoise: 36})
	medianTracker := track.NewTracker(track.Config{ProcessNoise: 36})

	var meanErr, medianErr sim.Series
	now := time.Duration(0)
	for step := 0; step < 180; step++ {
		now += time.Second
		truth := target.Step(time.Second)

		// Each sensor reports the target with noise; captured sensors
		// add their bias.
		dets := make([]track.Detection, 0, nSensors)
		for s := 0; s < nSensors; s++ {
			p := truth.Add(geo.Vec{DX: rng.Norm(0, 3), DY: rng.Norm(0, 3)})
			if s < 2 {
				p = p.Add(geo.Vec{DX: bias, DY: 0})
			}
			dets = append(dets, track.Detection{Pos: p, Var: 9, Sensor: int32(s)})
		}

		// The contaminated-sensor audit feeds trust.
		for _, i := range track.FlagOutliers(dets, 4) {
			ledger.Observe(asset.ID(dets[i].Sensor), trust.EvAnomaly, false)
		}

		if fused, ok := track.FuseMean(dets); ok {
			meanTracker.Observe(now, []track.Detection{fused})
		}
		if fused, ok := track.FuseMedian(dets); ok {
			medianTracker.Observe(now, []track.Detection{fused})
		}
		if tr, d := meanTracker.Nearest(truth); tr != nil {
			meanErr.Add(d)
		}
		if tr, d := medianTracker.Nearest(truth); tr != nil {
			medianErr.Add(d)
		}
	}

	fmt.Println("tracking one vehicle with 6 sensors, 2 captured (+150 m injected bias):")
	fmt.Printf("  mean-fused track error:   %.1f m (dragged ~1/3 of the bias)\n", meanErr.Mean())
	fmt.Printf("  median-fused track error: %.1f m (attack-resistant)\n", medianErr.Mean())
	fmt.Print("  sensors flagged by the outlier audit:")
	for s := 0; s < nSensors; s++ {
		if !ledger.Trusted(asset.ID(s), 0.5) {
			fmt.Printf(" %d", s)
		}
	}
	fmt.Println()
}
