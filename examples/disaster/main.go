// Disaster: the paper's humanitarian-mission scenario (§I: "an earlier
// and better-informed response to a humanitarian need"). Human reports
// about damaged infrastructure flood in with unknown reliability and
// some coordinated misinformation; the pipeline runs estimation-
// theoretic truth discovery, audits sensor sources against consensus,
// and the anomaly attention service ranks the situations that deserve
// responders' scarce attention — ignoring a decoy spike.
//
//	go run ./examples/disaster
package main

import (
	"fmt"

	"iobt/internal/anomaly"
	"iobt/internal/asset"
	"iobt/internal/sim"
	"iobt/internal/socialsense"
	"iobt/internal/trust"
)

func main() {
	rng := sim.NewRNG(99)

	// --- Social sensing: which damage reports are true? ---
	cfg := socialsense.DefaultGenConfig()
	cfg.Sources = 300        // residents reporting via phones
	cfg.Claims = 400         // "bridge X is down", "district Y flooded", ...
	cfg.ColluderFrac = 0.15  // coordinated misinformation
	cfg.ReliabilityAlpha = 4 // honest but noisy crowd
	cfg.ReliabilityBeta = 2

	data := socialsense.Generate(rng, cfg)
	maj := socialsense.MajorityVote(data)
	em := socialsense.EM(data, 50)

	fmt.Println("damage-report truth discovery (400 claims, 300 sources, 15% colluders):")
	fmt.Printf("  majority vote accuracy: %.3f\n", socialsense.Accuracy(maj, data.Truth))
	fmt.Printf("  EM truth discovery:     %.3f (%d iterations)\n",
		socialsense.Accuracy(em.Estimates(), data.Truth), em.Iterations)

	// Feed estimated reliabilities into the trust ledger.
	ledger := trust.NewLedger()
	for s, rel := range em.Reliability {
		ledger.Observe(asset.ID(s), trust.EvTruth, rel >= 0.5)
	}
	flagged := 0
	for s := range em.Reliability {
		if data.Colluder[s] && !ledger.Trusted(asset.ID(s), 0.5) {
			flagged++
		}
	}
	fmt.Printf("  colluders distrusted:   %d / %d\n", flagged, count(data.Colluder))

	// --- Sensor audit: a water-level gauge is mis-calibrated. ---
	audit := anomaly.NewSourceAudit()
	for round := 0; round < 60; round++ {
		level := 4 + rng.Norm(0, 0.2) // river level, meters
		reports := map[int]float64{}
		for gauge := 0; gauge < 7; gauge++ {
			reports[gauge] = level + rng.Norm(0, 0.1)
		}
		reports[7] = level + 2.5 // damaged gauge reads high
		audit.Round(reports)
	}
	fmt.Printf("\nsensor audit: bad gauges = %v (mean deviation %.2fm)\n",
		audit.BadSources(3), audit.MeanDeviation(7))

	// --- Attention: three districts stream distress indicators. ---
	att := anomaly.NewAttention(12, 4)
	for i := 0; i < 150; i++ {
		att.Observe("district-north", rng.Norm(10, 1))
		att.Observe("district-center", rng.Norm(10, 1))
		att.Observe("district-river", rng.Norm(10, 1))
	}
	att.Observe("district-north", 500) // decoy: a single spurious spike
	for i := 0; i < 10; i++ {
		att.Observe("district-river", 30) // sustained flooding signal
		att.Observe("district-north", rng.Norm(10, 1))
		att.Observe("district-center", rng.Norm(10, 1))
	}
	fmt.Printf("attention ranking (sustained beats decoy): %v\n", att.Ranked())
}

func count(b []bool) int {
	n := 0
	for _, v := range b {
		if v {
			n++
		}
	}
	return n
}
