// Jamgame: electronic warfare as a zero-sum game (paper §IV.A's
// "game theoretic foundations" in miniature). A blue link hops among
// radio channels while an adaptive jammer studies its habits and jams
// the most likely channel. A fixed-channel policy is annihilated; the
// fictitious-play equilibrium mix guarantees the game value no matter
// how smart the jammer is — more channels dilute the jammer further.
//
//	go run ./examples/jamgame
package main

import (
	"fmt"

	"iobt/internal/game"
	"iobt/internal/sim"
)

func main() {
	const jamEffect = 1.0 // a jammed channel delivers nothing
	rng := sim.NewRNG(5)

	for _, channels := range []int{3, 8} {
		m := game.JammingGame(channels, jamEffect)
		eq := game.FictitiousPlay(m, 20000, rng.Derive("fp"))
		fmt.Printf("%d channels: equilibrium value %.3f (exploitability %.4f)\n",
			channels, eq.Value, eq.Exploitability)

		fixed := playRounds(rng, m, func(int) int { return 0 }) // never hops
		hopper := playRounds(rng, m, func(int) int { return sample(rng, eq.RowMix) })
		fmt.Printf("  vs adaptive jammer: fixed-channel throughput %.3f, equilibrium hopper %.3f\n",
			fixed, hopper)
	}
	fmt.Println("\nthe hopper achieves the game value against any jammer; the fixed channel is annihilated")
}

// playRounds runs 4000 rounds of defender policy vs an adaptive jammer
// that jams the defender's historically most-used channel, and returns
// the mean throughput.
func playRounds(rng *sim.RNG, m *game.Matrix, policy func(round int) int) float64 {
	counts := make([]int, m.Cols())
	total := 0.0
	const rounds = 4000
	for r := 0; r < rounds; r++ {
		ch := policy(r)
		jam := argmax(counts)
		total += m.Payoff[ch][jam]
		counts[ch]++
	}
	return total / rounds
}

func argmax(v []int) int {
	best := 0
	for i, x := range v {
		if x > v[best] {
			best = i
		}
	}
	return best
}

func sample(rng *sim.RNG, mix []float64) int {
	u := rng.Float64()
	acc := 0.0
	for i, p := range mix {
		acc += p
		if u <= acc {
			return i
		}
	}
	return len(mix) - 1
}
