// Evacuation: the paper's §I motivating scenario — a non-combatant
// evacuation in a contested urban area. The example compares the two
// command models under mid-mission jamming and shows the reflexes
// (incremental re-composition) keeping the mission alive.
//
//	go run ./examples/evacuation
package main

import (
	"fmt"
	"log"
	"time"

	"iobt/internal/attack"
	"iobt/internal/core"
	"iobt/internal/geo"
)

func main() {
	fmt.Println("non-combatant evacuation: urban sector, jamming begins at t=3min")
	fmt.Println()
	for _, cmd := range []core.CommandModel{core.CommandHierarchy, core.CommandIntent} {
		runOnce(cmd)
	}
}

func runOnce(cmd core.CommandModel) {
	world := core.NewWorld(core.WorldConfig{
		Seed:    11,
		Terrain: geo.NewUrbanTerrain(1600, 1600, 100),
		Assets:  500,
	})
	defer world.Stop()

	mission := core.DefaultMission(
		geo.NewRect(geo.Point{X: 300, Y: 300}, geo.Point{X: 1300, Y: 1300}))
	mission.Goal.CoverageFrac = 0.45
	mission.Command = cmd
	mission.HierarchyLevels = 3
	mission.IncidentsPerMin = 20 // civilians needing extraction decisions
	mission.IncidentDeadline = 20 * time.Second

	rt := core.NewRuntime(world, mission)
	if err := rt.Synthesize(); err != nil {
		log.Fatalf("%s: synthesis: %v", cmd, err)
	}

	// The adversary jams the evacuation corridor mid-mission.
	world.Jam.Add(attack.Jammer{
		Area:      geo.Circle{Center: geo.Point{X: 800, Y: 800}, Radius: 500},
		Intensity: 0.9,
		From:      3 * time.Minute,
	})
	// And captures two composite members (they keep reporting, lying).
	for i, id := range rt.Composite().Members {
		if i >= 2 {
			break
		}
		attack.Capture(world.Eng, world.Pop, id, 4*time.Minute)
	}

	if err := rt.Start(); err != nil {
		log.Fatal(err)
	}
	if err := world.Run(8 * time.Minute); err != nil {
		log.Fatal(err)
	}
	rt.Stop()

	m := &rt.Metrics
	fmt.Printf("%-10s evacuees=%d decided-on-time=%.0f%% median-loop=%.2fs repairs=%d\n",
		cmd.String()+":",
		m.Incidents.Value(), 100*m.SuccessRate(),
		m.DecisionLatency.Percentile(50), m.Repairs.Value())
}
