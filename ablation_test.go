package iobt

// Ablation benchmarks: each pair (or set) isolates one design choice
// DESIGN.md calls out, so the cost/benefit of the mechanism is
// measurable rather than asserted.

import (
	"testing"

	"iobt/internal/asset"
	"iobt/internal/compose"
	"iobt/internal/geo"
	"iobt/internal/learn"
	"iobt/internal/mesh"
	"iobt/internal/sim"
	"iobt/internal/tomo"
)

// --- spatial index: grid hash vs. brute force neighbor queries ---

func neighborWorld(n int) (*geo.Grid, []geo.Point) {
	rng := sim.NewRNG(1)
	g := geo.NewGrid(geo.NewRect(geo.Point{}, geo.Point{X: 5000, Y: 5000}), 0)
	pts := make([]geo.Point, n)
	for i := 0; i < n; i++ {
		pts[i] = geo.Point{X: rng.Uniform(0, 5000), Y: rng.Uniform(0, 5000)}
		g.Insert(int32(i), pts[i])
	}
	return g, pts
}

func BenchmarkAblationGridIndex(b *testing.B) {
	g, _ := neighborWorld(10000)
	var buf []int32
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		buf = g.Near(buf[:0], geo.Point{X: 2500, Y: 2500}, 200)
	}
}

func BenchmarkAblationBruteForceScan(b *testing.B) {
	_, pts := neighborWorld(10000)
	center := geo.Point{X: 2500, Y: 2500}
	var buf []int32
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		buf = buf[:0]
		for j, p := range pts {
			if p.Dist(center) <= 200 {
				buf = append(buf, int32(j))
			}
		}
	}
}

// --- routing: cached BFS vs. geographic greedy forwarding ---

func routingWorld(b *testing.B) (*mesh.Network, []mesh.NodeID) {
	b.Helper()
	eng := sim.NewEngine(1)
	terr := geo.NewOpenTerrain(3000, 3000)
	pop := asset.Generate(terr, asset.DefaultMix(2000), eng.Stream("gen"))
	cfg := mesh.DefaultConfig()
	cfg.StepMobility = false
	net := mesh.New(eng, pop, terr, cfg)
	ids := net.Nodes()
	if len(ids) < 2 {
		b.Skip("degenerate world")
	}
	return net, ids
}

func BenchmarkAblationRouteBFS(b *testing.B) {
	net, ids := routingWorld(b)
	rng := sim.NewRNG(2)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		net.Refresh() // defeat cache: cold-path routing cost
		_ = net.Route(ids[rng.Intn(len(ids))], ids[rng.Intn(len(ids))])
	}
}

func BenchmarkAblationRouteBFSCached(b *testing.B) {
	net, ids := routingWorld(b)
	rng := sim.NewRNG(2)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = net.Route(ids[rng.Intn(len(ids))], ids[rng.Intn(len(ids))])
	}
}

func BenchmarkAblationRouteGeoGreedy(b *testing.B) {
	net, ids := routingWorld(b)
	rng := sim.NewRNG(2)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = net.RouteGeo(ids[rng.Intn(len(ids))], ids[rng.Intn(len(ids))])
	}
}

// --- composition: greedy vs. annealing refinement vs. random ---

func compositionInstance() (compose.Requirements, []compose.Candidate) {
	terr := geo.NewUrbanTerrain(2000, 2000, 100)
	rng := sim.NewRNG(3)
	pop := asset.Generate(terr, asset.DefaultMix(1500), rng)
	goal := compose.Goal{
		Area:         geo.NewRect(geo.Point{X: 200, Y: 200}, geo.Point{X: 1800, Y: 1800}),
		CoverageFrac: 0.55,
	}
	return compose.Derive(goal), compose.PoolFromPopulation(pop, nil)
}

func BenchmarkAblationComposeGreedy(b *testing.B) {
	req, pool := compositionInstance()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_, _ = compose.GreedySolver{}.Solve(req, pool)
	}
}

func BenchmarkAblationComposeAnneal(b *testing.B) {
	req, pool := compositionInstance()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_, _ = compose.AnnealSolver{RNG: sim.NewRNG(int64(i)), Steps: 2000}.Solve(req, pool)
	}
}

func BenchmarkAblationComposeRandom(b *testing.B) {
	req, pool := compositionInstance()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_, _ = compose.RandomSolver{RNG: sim.NewRNG(int64(i)), Attempts: 10}.Solve(req, pool)
	}
}

// --- recomposition: incremental repair vs. full re-solve ---

func BenchmarkAblationRecomposeIncremental(b *testing.B) {
	req, pool := compositionInstance()
	comp, err := compose.GreedySolver{}.Solve(req, pool)
	if err != nil {
		b.Skip("infeasible instance")
	}
	failed := map[asset.ID]bool{}
	for i, id := range comp.Members {
		if i%5 == 0 {
			failed[id] = true
		}
	}
	var survivors []compose.Candidate
	for _, c := range pool {
		if !failed[c.ID] {
			survivors = append(survivors, c)
		}
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_, _ = compose.Recompose(req, comp, failed, survivors)
	}
}

func BenchmarkAblationRecomposeFullSolve(b *testing.B) {
	req, pool := compositionInstance()
	comp, err := compose.GreedySolver{}.Solve(req, pool)
	if err != nil {
		b.Skip("infeasible instance")
	}
	failed := map[asset.ID]bool{}
	for i, id := range comp.Members {
		if i%5 == 0 {
			failed[id] = true
		}
	}
	var survivors []compose.Candidate
	for _, c := range pool {
		if !failed[c.ID] {
			survivors = append(survivors, c)
		}
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_, _ = compose.GreedySolver{}.Solve(req, survivors)
	}
}

// --- federated aggregation cost: mean vs. median vs. krum ---

func aggregationUpdates() [][]float64 {
	rng := sim.NewRNG(4)
	updates := make([][]float64, 50)
	for i := range updates {
		updates[i] = make([]float64, 200)
		for j := range updates[i] {
			updates[i][j] = rng.Norm(0, 1)
		}
	}
	return updates
}

func BenchmarkAblationAggMean(b *testing.B) {
	u := aggregationUpdates()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = (learn.MeanAgg{}).Aggregate(u)
	}
}

func BenchmarkAblationAggMedian(b *testing.B) {
	u := aggregationUpdates()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = (learn.MedianAgg{}).Aggregate(u)
	}
}

func BenchmarkAblationAggKrum(b *testing.B) {
	u := aggregationUpdates()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = (learn.KrumAgg{F: 10}).Aggregate(u)
	}
}

// --- gradient compression: dense vs. top-k federated rounds ---

func BenchmarkAblationFederatedDense(b *testing.B) {
	rng := sim.NewRNG(5)
	train := learn.GenDataset(rng, learn.GenConfig{N: 1000, Dim: 20, Noise: 0.05})
	test := learn.GenDatasetFromW(rng, train.TrueW, 100, 0.05)
	shards := train.Split(rng, 10, 0.3)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = learn.RunFederated(rng.Derive("d"), shards, test, learn.FedConfig{Rounds: 5})
	}
}

func BenchmarkAblationFederatedTopK(b *testing.B) {
	rng := sim.NewRNG(5)
	train := learn.GenDataset(rng, learn.GenConfig{N: 1000, Dim: 20, Noise: 0.05})
	test := learn.GenDatasetFromW(rng, train.TrueW, 100, 0.05)
	shards := train.Split(rng, 10, 0.3)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = learn.RunFederated(rng.Derive("k"), shards, test, learn.FedConfig{Rounds: 5, TopK: 4})
	}
}

// --- tomography: passive snapshot vs. active probing rounds ---

func BenchmarkAblationTomoSnapshot(b *testing.B) {
	eng := sim.NewEngine(6)
	terr := geo.NewOpenTerrain(900, 900)
	pop := asset.Generate(terr, asset.DefaultMix(300), eng.Stream("gen"))
	cfg := mesh.DefaultConfig()
	cfg.StepMobility = false
	net := mesh.New(eng, pop, terr, cfg)
	monitors := net.Nodes()
	if len(monitors) > 8 {
		monitors = monitors[:8]
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_, _ = tomo.CollectPaths(net, monitors)
	}
}
