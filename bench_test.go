// Package iobt's root benchmark suite: one testing.B benchmark per
// experiment table (DESIGN.md §4, E1..E15), each running the same
// harness as cmd/benchtab in quick mode, plus micro-benchmarks of the
// hot substrate paths (event queue, spatial index, routing, solvers,
// aggregators).
//
// Run everything:
//
//	go test -bench=. -benchmem
package iobt

import (
	"testing"
	"time"

	"iobt/internal/asset"
	"iobt/internal/compose"
	"iobt/internal/experiments"
	"iobt/internal/geo"
	"iobt/internal/learn"
	"iobt/internal/mesh"
	"iobt/internal/sim"
	"iobt/internal/socialsense"
)

// benchExperiment runs one experiment table per iteration.
func benchExperiment(b *testing.B, id string) {
	b.Helper()
	e, ok := experiments.Lookup(id)
	if !ok {
		b.Fatalf("unknown experiment %s", id)
	}
	for i := 0; i < b.N; i++ {
		t := e.Run(42, true)
		if len(t.Rows) == 0 {
			b.Fatalf("%s produced no rows", id)
		}
	}
}

func BenchmarkE1DecisionLoop(b *testing.B)    { benchExperiment(b, "E1") }
func BenchmarkE2Composition(b *testing.B)     { benchExperiment(b, "E2") }
func BenchmarkE3Discovery(b *testing.B)       { benchExperiment(b, "E3") }
func BenchmarkE4Adaptation(b *testing.B)      { benchExperiment(b, "E4") }
func BenchmarkE5Game(b *testing.B)            { benchExperiment(b, "E5") }
func BenchmarkE6Learning(b *testing.B)        { benchExperiment(b, "E6") }
func BenchmarkE7Truth(b *testing.B)           { benchExperiment(b, "E7") }
func BenchmarkE8Tomography(b *testing.B)      { benchExperiment(b, "E8") }
func BenchmarkE9Saturation(b *testing.B)      { benchExperiment(b, "E9") }
func BenchmarkE10CostOfLearning(b *testing.B) { benchExperiment(b, "E10") }
func BenchmarkE11Continual(b *testing.B)      { benchExperiment(b, "E11") }
func BenchmarkE12Diversity(b *testing.B)      { benchExperiment(b, "E12") }

// --- substrate micro-benchmarks ---

func BenchmarkEngineScheduleRun(b *testing.B) {
	for i := 0; i < b.N; i++ {
		eng := sim.NewEngine(1)
		for j := 0; j < 1000; j++ {
			eng.Schedule(time.Duration(j)*time.Millisecond, "x", func() {})
		}
		_ = eng.Run(0)
	}
	b.ReportMetric(1000, "events/op")
}

func BenchmarkGridNear(b *testing.B) {
	g := geo.NewGrid(geo.NewRect(geo.Point{}, geo.Point{X: 5000, Y: 5000}), 0)
	rng := sim.NewRNG(1)
	for i := int32(0); i < 10000; i++ {
		g.Insert(i, geo.Point{X: rng.Uniform(0, 5000), Y: rng.Uniform(0, 5000)})
	}
	var buf []int32
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		buf = g.Near(buf[:0], geo.Point{X: 2500, Y: 2500}, 300)
	}
}

func BenchmarkMeshRefresh1k(b *testing.B) {
	eng := sim.NewEngine(1)
	terr := geo.NewOpenTerrain(3000, 3000)
	pop := asset.Generate(terr, asset.DefaultMix(1000), eng.Stream("gen"))
	cfg := mesh.DefaultConfig()
	cfg.StepMobility = false
	net := mesh.New(eng, pop, terr, cfg)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		net.Refresh()
	}
}

func BenchmarkMeshRoute(b *testing.B) {
	eng := sim.NewEngine(1)
	terr := geo.NewOpenTerrain(3000, 3000)
	pop := asset.Generate(terr, asset.DefaultMix(1000), eng.Stream("gen"))
	cfg := mesh.DefaultConfig()
	cfg.StepMobility = false
	net := mesh.New(eng, pop, terr, cfg)
	ids := net.Nodes()
	if len(ids) < 2 {
		b.Skip("not enough connected nodes")
	}
	rng := sim.NewRNG(2)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		a := ids[rng.Intn(len(ids))]
		c := ids[rng.Intn(len(ids))]
		net.Refresh() // defeat the route cache: worst-case routing
		_ = net.Route(a, c)
	}
}

func BenchmarkGreedyCompose5k(b *testing.B) {
	terr := geo.NewUrbanTerrain(3000, 3000, 100)
	rng := sim.NewRNG(1)
	pop := asset.Generate(terr, asset.DefaultMix(5000), rng)
	goal := compose.Goal{
		Area:         geo.NewRect(geo.Point{X: 200, Y: 200}, geo.Point{X: 2800, Y: 2800}),
		CoverageFrac: 0.6,
	}
	req := compose.Derive(goal)
	pool := compose.PoolFromPopulation(pop, nil)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_, _ = compose.GreedySolver{}.Solve(req, pool)
	}
}

func BenchmarkEMTruthDiscovery(b *testing.B) {
	d := socialsense.Generate(sim.NewRNG(1), socialsense.DefaultGenConfig())
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = socialsense.EM(d, 50)
	}
}

func BenchmarkKrumAggregate(b *testing.B) {
	rng := sim.NewRNG(1)
	updates := make([][]float64, 50)
	for i := range updates {
		updates[i] = make([]float64, 100)
		for j := range updates[i] {
			updates[i][j] = rng.Norm(0, 1)
		}
	}
	agg := learn.KrumAgg{F: 10}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = agg.Aggregate(updates)
	}
}

func BenchmarkFederatedRound(b *testing.B) {
	rng := sim.NewRNG(1)
	train := learn.GenDataset(rng, learn.GenConfig{N: 2000, Dim: 5, Noise: 0.05})
	test := learn.GenDatasetFromW(rng, train.TrueW, 200, 0.05)
	shards := train.Split(rng, 20, 0.3)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = learn.RunFederated(rng.Derive("fed"), shards, test, learn.FedConfig{
			Rounds: 1, LocalSteps: 5, LR: 0.5, Agg: learn.MedianAgg{},
		})
	}
}

func BenchmarkE13Tracking(b *testing.B) { benchExperiment(b, "E13") }
func BenchmarkE14Recovery(b *testing.B) { benchExperiment(b, "E14") }
func BenchmarkE15Failover(b *testing.B) { benchExperiment(b, "E15") }
